package term

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	c := C("a")
	if c.IsVar || c.Name != "a" {
		t.Fatalf("C(a) = %+v", c)
	}
	v := V("X")
	if !v.IsVar || v.Name != "X" {
		t.Fatalf("V(X) = %+v", v)
	}
	if c.Equal(v) {
		t.Fatal("constant a should not equal variable X")
	}
	if !c.Equal(C("a")) {
		t.Fatal("constant a should equal constant a")
	}
	// A variable and a constant with the same name are distinct.
	if C("X").Equal(V("X")) {
		t.Fatal("C(X) must differ from V(X)")
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("r1", C("a"), V("X"))
	if got := a.String(); got != "r1(a,X)" {
		t.Fatalf("String = %q", got)
	}
	p := NewAtom("p")
	if got := p.String(); got != "p" {
		t.Fatalf("nullary String = %q", got)
	}
}

func TestAtomGroundAndKey(t *testing.T) {
	g := NewAtom("r", C("a"), C("b"))
	if !g.IsGround() {
		t.Fatal("ground atom reported non-ground")
	}
	if g.Key() != "r(a,b)" {
		t.Fatalf("Key = %q", g.Key())
	}
	ng := NewAtom("r", C("a"), V("X"))
	if ng.IsGround() {
		t.Fatal("non-ground atom reported ground")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Key on non-ground atom should panic")
		}
	}()
	_ = ng.Key()
}

func TestAtomVars(t *testing.T) {
	a := NewAtom("r", V("X"), C("a"), V("Y"), V("X"))
	vs := a.Vars(nil)
	if len(vs) != 2 || vs[0] != "X" || vs[1] != "Y" {
		t.Fatalf("Vars = %v", vs)
	}
}

func TestMatchBasic(t *testing.T) {
	s := NewSubst()
	pat := NewAtom("r", V("X"), V("Y"))
	fact := NewAtom("r", C("a"), C("b"))
	if !Match(pat, fact, s) {
		t.Fatal("match failed")
	}
	if s.Lookup(V("X")).Name != "a" || s.Lookup(V("Y")).Name != "b" {
		t.Fatalf("bindings = %v", s)
	}
}

func TestMatchRepeatedVar(t *testing.T) {
	pat := NewAtom("r", V("X"), V("X"))
	if Match(pat, NewAtom("r", C("a"), C("b")), NewSubst()) {
		t.Fatal("r(X,X) should not match r(a,b)")
	}
	if !Match(pat, NewAtom("r", C("a"), C("a")), NewSubst()) {
		t.Fatal("r(X,X) should match r(a,a)")
	}
}

func TestMatchConstMismatch(t *testing.T) {
	pat := NewAtom("r", C("a"), V("Y"))
	if Match(pat, NewAtom("r", C("b"), C("c")), NewSubst()) {
		t.Fatal("r(a,Y) should not match r(b,c)")
	}
	if Match(pat, NewAtom("q", C("a"), C("c")), NewSubst()) {
		t.Fatal("predicate mismatch must fail")
	}
	if Match(pat, NewAtom("r", C("a")), NewSubst()) {
		t.Fatal("arity mismatch must fail")
	}
}

func TestMatchRespectsExistingBindings(t *testing.T) {
	s := NewSubst()
	s["X"] = C("a")
	if Match(NewAtom("r", V("X")), NewAtom("r", C("b")), s) {
		t.Fatal("bound X=a should not match b")
	}
	s2 := NewSubst()
	s2["X"] = C("a")
	if !Match(NewAtom("r", V("X")), NewAtom("r", C("a")), s2) {
		t.Fatal("bound X=a should match a")
	}
}

func TestUnify(t *testing.T) {
	s := NewSubst()
	a := NewAtom("r", V("X"), C("b"))
	b := NewAtom("r", C("a"), V("Y"))
	if !Unify(a, b, s) {
		t.Fatal("unify failed")
	}
	if s.Lookup(V("X")).Name != "a" || s.Lookup(V("Y")).Name != "b" {
		t.Fatalf("bindings = %v", s)
	}
	// Variable-variable chains.
	s2 := NewSubst()
	if !Unify(NewAtom("r", V("X")), NewAtom("r", V("Y")), s2) {
		t.Fatal("var-var unify failed")
	}
	if !Unify(NewAtom("r", V("Y")), NewAtom("r", C("c")), s2) {
		t.Fatal("chained unify failed")
	}
	if s2.Lookup(V("X")).Name != "c" {
		t.Fatalf("X should resolve to c, got %v", s2.Lookup(V("X")))
	}
}

func TestSubstApply(t *testing.T) {
	s := NewSubst()
	s["X"] = C("a")
	a := s.Apply(NewAtom("r", V("X"), V("Y")))
	if a.String() != "r(a,Y)" {
		t.Fatalf("Apply = %s", a)
	}
}

func TestSubstBindConflict(t *testing.T) {
	s := NewSubst()
	if !s.Bind("X", C("a")) {
		t.Fatal("first bind failed")
	}
	if s.Bind("X", C("b")) {
		t.Fatal("conflicting bind should fail")
	}
	if !s.Bind("X", C("a")) {
		t.Fatal("identical rebind should succeed")
	}
}

func TestRenameApart(t *testing.T) {
	a := NewAtom("r", V("X"), C("a"))
	r := RenameApart(a, "_1")
	if r.String() != "r(X_1,a)" {
		t.Fatalf("RenameApart = %s", r)
	}
	if a.String() != "r(X,a)" {
		t.Fatal("RenameApart mutated input")
	}
}

func TestConstsIn(t *testing.T) {
	a := NewAtom("r", C("a"), V("X"), C("b"), C("a"))
	cs := ConstsIn(a, nil)
	if len(cs) != 2 || cs[0] != "a" || cs[1] != "b" {
		t.Fatalf("ConstsIn = %v", cs)
	}
}

// Property: matching a pattern against a fact produced by applying a
// ground substitution to the pattern always succeeds and reproduces the
// bindings for the pattern's variables.
func TestMatchRoundTrip(t *testing.T) {
	f := func(a, b uint8) bool {
		ca, cb := C(constName(a)), C(constName(b))
		pat := NewAtom("r", V("X"), V("Y"), V("X"))
		s := Subst{"X": ca, "Y": cb}
		fact := s.Apply(pat)
		got := NewSubst()
		if !Match(pat, fact, got) {
			return false
		}
		return got.Lookup(V("X")).Equal(ca) && got.Lookup(V("Y")).Equal(cb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func constName(b uint8) string { return string(rune('a' + int(b)%26)) }

func TestSortAtomsDeterministic(t *testing.T) {
	atoms := []Atom{NewAtom("b", C("x")), NewAtom("a", C("y")), NewAtom("a", C("x"))}
	SortAtoms(atoms)
	if atoms[0].String() != "a(x)" || atoms[1].String() != "a(y)" || atoms[2].String() != "b(x)" {
		t.Fatalf("sorted = %v", atoms)
	}
}
