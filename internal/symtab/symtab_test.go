package symtab

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternDenseIDs(t *testing.T) {
	tab := New()
	a := tab.Intern("a")
	b := tab.Intern("b")
	if a != 0 || b != 1 {
		t.Fatalf("ids not dense: a=%d b=%d", a, b)
	}
	if got := tab.Intern("a"); got != a {
		t.Fatalf("re-intern of a = %d, want %d", got, a)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestNameRoundTrip(t *testing.T) {
	tab := New()
	syms := []string{"", "x", "hello", "\x1f", "multi word"}
	ids := make([]Sym, len(syms))
	for i, s := range syms {
		ids[i] = tab.Intern(s)
	}
	for i, s := range syms {
		if got := tab.Name(ids[i]); got != s {
			t.Errorf("Name(%d) = %q, want %q", ids[i], got, s)
		}
	}
}

func TestLookup(t *testing.T) {
	tab := New()
	if _, ok := tab.Lookup("missing"); ok {
		t.Fatal("Lookup found a symbol in an empty table")
	}
	id := tab.Intern("present")
	got, ok := tab.Lookup("present")
	if !ok || got != id {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
	if tab.Len() != 1 {
		t.Fatalf("Lookup must not intern; Len = %d", tab.Len())
	}
}

func TestInternBytes(t *testing.T) {
	tab := New()
	id := tab.InternBytes([]byte("key"))
	if got := tab.Intern("key"); got != id {
		t.Fatalf("InternBytes and Intern disagree: %d vs %d", id, got)
	}
}

func TestConcurrentIntern(t *testing.T) {
	tab := New()
	const goroutines = 8
	const symbols = 200
	var wg sync.WaitGroup
	results := make([][]Sym, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]Sym, symbols)
			for i := 0; i < symbols; i++ {
				ids[i] = tab.Intern(fmt.Sprintf("sym-%d", i))
			}
			results[g] = ids
		}(g)
	}
	wg.Wait()
	if tab.Len() != symbols {
		t.Fatalf("Len = %d, want %d", tab.Len(), symbols)
	}
	// Every goroutine must have seen the same id for the same symbol.
	for g := 1; g < goroutines; g++ {
		for i := 0; i < symbols; i++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got id %d for sym-%d, goroutine 0 got %d",
					g, results[g][i], i, results[0][i])
			}
		}
	}
	// And ids must round-trip.
	for i := 0; i < symbols; i++ {
		want := fmt.Sprintf("sym-%d", i)
		if got := tab.Name(results[0][i]); got != want {
			t.Fatalf("Name(%d) = %q, want %q", results[0][i], got, want)
		}
	}
}
