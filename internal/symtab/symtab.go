// Package symtab implements a concurrent string interner: a bijection
// between symbols (constants, relation names, canonical atom keys) and
// dense uint32 ids. One Table is shared per core.System, so every layer
// of the engine — relational storage (internal/relation), constraint
// matching, the grounder and the repair search — can compare and hash
// symbols as machine words instead of re-scanning strings.
//
// A Table is append-only: symbols are never removed, so an id handed
// out once stays valid for the lifetime of the table. The read path
// (Lookup/Name) takes only an RLock and the id→name direction is a
// plain slice index, which keeps interned comparisons on the hot paths
// of grounding and repair close to hardware speed.
package symtab

import (
	"sync"
)

// Sym is an interned symbol id. Ids are dense: the n-th distinct symbol
// interned into a table gets id n-1.
type Sym = uint32

// Table is a concurrent string↔Sym interner. The zero value is not
// usable; use New. A Table is safe for concurrent use by multiple
// goroutines.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]Sym
	names []string
}

// New returns an empty table.
func New() *Table {
	return &Table{ids: make(map[string]Sym)}
}

// Intern returns the id of s, assigning the next dense id if s has not
// been seen before.
func (t *Table) Intern(s string) Sym {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = Sym(len(t.names))
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}

// InternBytes is Intern for a byte slice key. The string copy is only
// made when the symbol is new, so repeated lookups of known symbols do
// not allocate.
func (t *Table) InternBytes(b []byte) Sym {
	t.mu.RLock()
	id, ok := t.ids[string(b)] // no alloc: map lookup special case
	t.mu.RUnlock()
	if ok {
		return id
	}
	return t.Intern(string(b))
}

// Lookup returns the id of s without interning it. The second result
// reports whether s is known.
func (t *Table) Lookup(s string) (Sym, bool) {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	return id, ok
}

// Name returns the symbol with the given id. It panics if the id was
// not handed out by this table.
func (t *Table) Name(id Sym) string {
	t.mu.RLock()
	s := t.names[id]
	t.mu.RUnlock()
	return s
}

// Len returns the number of interned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.names)
	t.mu.RUnlock()
	return n
}

// Hash32 is the allocation-free FNV-1a hash of s. The shard routers of
// the hot paths (the grounder's possible-atom set, the repair
// frontier's visited set) share it instead of each hand-rolling the
// loop.
func Hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
