// Package program compiles the data exchange constraints and trust
// relationships of a peer into disjunctive logic programs whose stable
// models are the peer's solutions — the answer-set-programming route of
// Sections 3 and 4 of the paper. Three compilers are provided:
//
//   - BuildDirect: the GAV/primed-style specification of Section 3.1
//     (rules (4)-(9)): persistence rules, forced imports, disjunctive
//     deletion rules for EGDs/denials, and delete-or-insert rules with
//     the choice operator for referential DECs;
//   - BuildLAV: the annotated three-layer specification of Section 4.2
//     and the appendix (annotation constants td/ta/fa/tss);
//   - BuildTransitive: the combined program of Section 4.3, where each
//     peer's rules read the repaired (primed) relations of its
//     more-trusted neighbours (Example 4, rules (10)-(13)).
//
// The supported DEC class is the paper's: universal DECs (inclusions,
// EGDs, denials) and simple referential DECs (single mutable head atom,
// fixed witness providers), acyclic across DECs. Systems outside this
// class are rejected; the model-theoretic engine in internal/core
// remains available for them.
package program

import (
	"fmt"
	"strings"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/term"
)

// Naming records how generated predicates relate to schema relations.
type Naming struct {
	// PrimeSuffix is appended to a relation name for its solution
	// ("primed") version; default "_p".
	PrimeSuffix string
	// Primed maps each compiled relation to its primed name.
	Primed map[string]string
	// Rel maps a primed name back to the relation.
	Rel map[string]string
}

func newNaming() *Naming {
	return &Naming{PrimeSuffix: "_p", Primed: map[string]string{}, Rel: map[string]string{}}
}

// Prime returns (and records) the primed name of a relation.
func (n *Naming) Prime(rel string) string {
	p, ok := n.Primed[rel]
	if !ok {
		p = rel + n.PrimeSuffix
		n.Primed[rel] = p
		n.Rel[p] = rel
	}
	return p
}

// IsPrimed reports whether name is a primed relation, returning the
// underlying relation.
func (n *Naming) IsPrimed(name string) (string, bool) {
	rel, ok := n.Rel[name]
	return rel, ok
}

// decKind classifies a dependency for compilation.
type decKind int

const (
	kindInclusion   decKind = iota // single-atom body, single-atom head, no exvars
	kindEGD                        // no head atoms, head equalities
	kindDenial                     // no head at all
	kindReferential                // exvars with a single mutable head atom
)

func classify(d *constraint.Dependency, mutable map[string]bool) (decKind, error) {
	switch {
	case d.IsDenial():
		return kindDenial, nil
	case d.IsEGD():
		return kindEGD, nil
	case d.IsFullTGD():
		if len(d.Body) == 1 && len(d.Head) == 1 && len(d.Cond) == 0 && len(d.HeadEq) == 0 {
			return kindInclusion, nil
		}
		return 0, fmt.Errorf("program: full TGD %s outside the supported class (need single body and head atom)", d.Name)
	default:
		// Referential: one mutable head atom, the rest fixed providers.
		mut := 0
		for _, h := range d.Head {
			if mutable[h.Pred] {
				mut++
			}
		}
		if mut != 1 {
			return 0, fmt.Errorf("program: referential DEC %s needs exactly one mutable head atom, found %d", d.Name, mut)
		}
		if len(d.HeadEq) != 0 {
			return 0, fmt.Errorf("program: referential DEC %s with head equalities is unsupported", d.Name)
		}
		return kindReferential, nil
	}
}

// BuildOptions restricts a specification build to a query-relevance
// slice (internal/slice). The zero value compiles everything.
type BuildOptions struct {
	// KeepDep, when non-nil, selects the DECs and ICs to compile
	// (slice.Slice.KeepDep). Kept dependencies must only mention
	// relations accepted by RelevantRels.
	KeepDep func(*constraint.Dependency) bool
	// RelevantRels, when non-nil, limits persistence rules, primed
	// relations and emitted facts to the named relations. It must cover
	// the queried peer's whole schema (the slice seeds guarantee that),
	// so the query's relations are always compiled.
	RelevantRels map[string]bool
}

func (o BuildOptions) keeps(d *constraint.Dependency) bool {
	return o.KeepDep == nil || o.KeepDep(d)
}

func (o BuildOptions) relevant(rel string) bool {
	return o.RelevantRels == nil || o.RelevantRels[rel]
}

// builder accumulates the program for one peer.
type builder struct {
	sys    *core.System
	naming *Naming
	prog   *lp.Program
	opt    BuildOptions
	// mutable marks relations the compiled peer may change.
	mutable map[string]bool
	// upstreamPrimed maps relations of other peers that must be read in
	// their repaired version (transitive case) to that primed name.
	upstreamPrimed map[string]string
	// imports collects, per mutable relation, the source references of
	// inclusion DECs importing into it (for the candidate upper bound).
	imports map[string][]term.Atom
	// needCand marks mutable relations whose violation bodies need the
	// candidate upper bound (original ∪ imports).
	needCand map[string]bool
	counter  int
}

func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// BuildDirect compiles the direct-case specification for peer id. It
// returns the program (with choice goals still present; callers pass it
// through lp.UnfoldChoice before grounding) and the naming map.
//
// Trust note: the two repair stages of Definition 4 are compiled
// jointly. For the supported class this coincides with the prioritized
// semantics whenever the less-trust DECs are import inclusions or
// forced constraints (as in all of the paper's examples), because their
// repairs are forced and survive stage-two minimization unchanged.
func BuildDirect(s *core.System, id core.PeerID) (*lp.Program, *Naming, error) {
	return BuildDirectOpt(s, id, BuildOptions{})
}

// BuildDirectOpt is BuildDirect restricted to a query-relevance slice:
// only kept DECs/ICs are compiled and only relevant relations receive
// persistence rules and facts, so grounding cost is proportional to the
// slice instead of to the system.
func BuildDirectOpt(s *core.System, id core.PeerID, opt BuildOptions) (*lp.Program, *Naming, error) {
	p, ok := s.Peer(id)
	if !ok {
		return nil, nil, fmt.Errorf("program: unknown peer %s", id)
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	b := &builder{
		sys:            s,
		naming:         newNaming(),
		prog:           &lp.Program{},
		opt:            opt,
		mutable:        map[string]bool{},
		upstreamPrimed: map[string]string{},
		imports:        map[string][]term.Atom{},
		needCand:       map[string]bool{},
	}
	if err := b.compilePeer(p, true); err != nil {
		return nil, nil, err
	}
	b.emitFacts(p, true)
	return b.prog, b.naming, nil
}

// compilePeer emits the rules for one peer's DECs. includeSame extends
// the mutable relations to equally-trusted neighbours (the direct case
// of Definition 4; the transitive builder sets it for the root only).
func (b *builder) compilePeer(p *core.Peer, includeSame bool) error {
	id := p.ID
	// Determine mutable relations: the peer's own, plus same-trusted
	// neighbours' relations for the direct case.
	for _, rel := range p.Schema.Relations() {
		b.mutable[rel] = true
	}
	if includeSame {
		for _, q := range b.sys.TrustedPeers(id, core.TrustSame) {
			qp, _ := b.sys.Peer(q)
			for _, rel := range qp.Schema.Relations() {
				b.mutable[rel] = true
			}
		}
	}

	decs := b.trustedDECs(p, includeSame)

	// Pass 1: collect inclusion imports (to build candidate bounds and
	// forced-import rules) and check acyclicity of insert predicates.
	insertPreds := map[string]bool{}
	bodyPreds := map[string]bool{}
	for _, d := range decs {
		kind, err := classify(d, b.mutable)
		if err != nil {
			return err
		}
		for _, a := range d.Body {
			bodyPreds[a.Pred] = true
		}
		switch kind {
		case kindInclusion:
			src, dst := d.Body[0], d.Head[0]
			if b.mutable[dst.Pred] && !b.mutable[src.Pred] {
				b.imports[dst.Pred] = append(b.imports[dst.Pred], b.ref(src))
			} else if b.mutable[src.Pred] && !b.mutable[dst.Pred] {
				// validation direction, handled in pass 2
			} else if b.mutable[src.Pred] && b.mutable[dst.Pred] {
				return fmt.Errorf("program: inclusion DEC %s with both sides mutable is outside the supported class", d.Name)
			}
		case kindReferential:
			for _, h := range d.Head {
				if b.mutable[h.Pred] {
					insertPreds[h.Pred] = true
				}
			}
		}
	}
	for pred := range insertPreds {
		if bodyPreds[pred] {
			return fmt.Errorf("program: cyclic DECs: insertion target %s also appears in a DEC body (the paper's repair layer requires acyclicity)", pred)
		}
		if len(b.imports[pred]) > 0 {
			return fmt.Errorf("program: insertion target %s also receives imports; outside the supported class", pred)
		}
	}

	// Persistence rules (4)/(5) for every mutable relation of this peer.
	x2 := func(n int) []term.Term {
		args := make([]term.Term, n)
		for i := range args {
			args[i] = term.V(fmt.Sprintf("X%d", i+1))
		}
		return args
	}
	rels := p.Schema.Relations()
	if includeSame {
		for _, q := range b.sys.TrustedPeers(id, core.TrustSame) {
			qp, _ := b.sys.Peer(q)
			rels = append(rels, qp.Schema.Relations()...)
		}
	}
	for _, rel := range rels {
		if !b.opt.relevant(rel) {
			// Out-of-slice relation: no kept rule reads or repairs it,
			// so neither persistence rules nor a primed version are
			// needed (ModelsToSolutions then keeps its original tuples).
			continue
		}
		decl, _ := b.declOf(rel)
		args := x2(decl.Arity)
		prime := b.naming.Prime(rel)
		b.prog.Add(lp.Rule{
			Head: []lp.Literal{lp.Pos(term.Atom{Pred: prime, Args: args})},
			PosB: []lp.Literal{lp.Pos(term.Atom{Pred: rel, Args: args})},
			NegB: []lp.Literal{lp.NegL(term.Atom{Pred: prime, Args: args})},
		})
	}

	// Forced-import rules for inclusions from fixed sources.
	for dst, srcs := range b.imports {
		prime := b.naming.Prime(dst)
		for _, src := range srcs {
			b.prog.Add(lp.Rule{
				Head: []lp.Literal{lp.Pos(term.Atom{Pred: prime, Args: src.Args})},
				PosB: []lp.Literal{lp.Pos(src)},
			})
		}
	}

	// Pass 2: violation/repair rules.
	for _, d := range decs {
		kind, _ := classify(d, b.mutable)
		var err error
		switch kind {
		case kindInclusion:
			err = b.emitInclusion(d)
		case kindEGD, kindDenial:
			err = b.emitEGDOrDenial(d)
		case kindReferential:
			err = b.emitReferential(id, d)
		}
		if err != nil {
			return err
		}
	}

	// Candidate upper bounds where needed.
	b.emitCandidates()

	// Local ICs as program denial constraints over the primed relations
	// (Section 3.2).
	for _, ic := range p.ICs {
		if !b.opt.keeps(ic) {
			continue
		}
		if ic.IsTGD() {
			return fmt.Errorf("program: local IC %s must be a denial or EGD", ic.Name)
		}
		r := lp.Rule{}
		for _, a := range ic.Body {
			r.PosB = append(r.PosB, lp.Pos(term.Atom{Pred: b.naming.Prime(a.Pred), Args: a.Args}))
		}
		for _, c := range ic.Cond {
			r.Cmps = append(r.Cmps, lp.Cmp{Op: c.Op, L: c.L, R: c.R})
		}
		for _, c := range ic.HeadEq {
			r.Cmps = append(r.Cmps, lp.Cmp{Op: negateOp(c.Op), L: c.L, R: c.R})
		}
		b.prog.Add(r)
	}
	return nil
}

// trustedDECs returns the DECs of p toward trusted neighbours that the
// build options keep, less-trust first for determinism.
func (b *builder) trustedDECs(p *core.Peer, includeSame bool) []*constraint.Dependency {
	var out []*constraint.Dependency
	keep := func(ds []*constraint.Dependency) {
		for _, d := range ds {
			if b.opt.keeps(d) {
				out = append(out, d)
			}
		}
	}
	for _, q := range b.sys.TrustedPeers(p.ID, core.TrustLess) {
		keep(p.DECs[q])
	}
	if includeSame {
		for _, q := range b.sys.TrustedPeers(p.ID, core.TrustSame) {
			keep(p.DECs[q])
		}
	}
	return out
}

func (b *builder) declOf(rel string) (decl struct{ Arity int }, ok bool) {
	owner, ok := b.sys.Owner(rel)
	if !ok {
		return decl, false
	}
	op, _ := b.sys.Peer(owner)
	d, ok := op.Schema.Decl(rel)
	decl.Arity = d.Arity
	return decl, ok
}

// ref returns the body reference for a relation atom: the upstream
// primed version if the relation is repaired by a more-trusted peer
// (transitive case), the original otherwise.
func (b *builder) ref(a term.Atom) term.Atom {
	if p, ok := b.upstreamPrimed[a.Pred]; ok {
		return term.Atom{Pred: p, Args: a.Args}
	}
	return a
}

// candRef returns the violation-body reference for an atom: the
// candidate upper bound (original ∪ imports) for mutable relations
// with imports, the plain reference otherwise.
func (b *builder) candRef(a term.Atom) term.Atom {
	if b.mutable[a.Pred] && len(b.imports[a.Pred]) > 0 {
		b.needCand[a.Pred] = true
		return term.Atom{Pred: a.Pred + "_cand", Args: a.Args}
	}
	return b.ref(a)
}

// emitCandidates defines rel_cand = rel ∪ imports for relations whose
// violation bodies needed the upper bound.
func (b *builder) emitCandidates() {
	for rel := range b.needCand {
		decl, _ := b.declOf(rel)
		args := make([]term.Term, decl.Arity)
		for i := range args {
			args[i] = term.V(fmt.Sprintf("X%d", i+1))
		}
		cand := term.Atom{Pred: rel + "_cand", Args: args}
		b.prog.Add(lp.Rule{
			Head: []lp.Literal{lp.Pos(cand)},
			PosB: []lp.Literal{lp.Pos(term.Atom{Pred: rel, Args: args})},
		})
		for _, src := range b.imports[rel] {
			b.prog.Add(lp.Rule{
				Head: []lp.Literal{lp.Pos(term.Atom{Pred: rel + "_cand", Args: src.Args})},
				PosB: []lp.Literal{lp.Pos(src)},
			})
		}
	}
}

// emitInclusion handles the validation direction (mutable source,
// fixed destination): tuples of the source without a match in the
// fixed destination are force-deleted.
func (b *builder) emitInclusion(d *constraint.Dependency) error {
	src, dst := d.Body[0], d.Head[0]
	if b.mutable[dst.Pred] {
		return nil // import direction already handled in pass 1
	}
	prime := b.naming.Prime(src.Pred)
	b.prog.Add(lp.Rule{
		Head: []lp.Literal{lp.NegL(term.Atom{Pred: prime, Args: src.Args})},
		PosB: []lp.Literal{lp.Pos(b.candRef(src))},
		NegB: []lp.Literal{lp.Pos(b.ref(dst))},
	})
	return nil
}

// emitEGDOrDenial compiles an equality-generating or denial DEC into a
// disjunctive deletion rule over the mutable body atoms (one rule per
// violated equality).
func (b *builder) emitEGDOrDenial(d *constraint.Dependency) error {
	violations := d.HeadEq
	if d.IsDenial() {
		violations = []constraint.Comparison{{}} // single unconditional violation
	}
	for _, eq := range violations {
		r := lp.Rule{}
		for _, a := range d.Body {
			r.PosB = append(r.PosB, lp.Pos(b.candRef(a)))
			if b.mutable[a.Pred] {
				r.Head = append(r.Head, lp.NegL(term.Atom{Pred: b.naming.Prime(a.Pred), Args: a.Args}))
			}
		}
		for _, c := range d.Cond {
			r.Cmps = append(r.Cmps, lp.Cmp{Op: c.Op, L: c.L, R: c.R})
		}
		if !d.IsDenial() {
			r.Cmps = append(r.Cmps, lp.Cmp{Op: negateOp(eq.Op), L: eq.L, R: eq.R})
		}
		// With no mutable body atom the rule is a denial constraint:
		// a violation leaves the peer without solutions.
		b.prog.Add(r)
	}
	return nil
}

// emitReferential compiles a simple referential DEC into the Section
// 3.1 pattern: aux1/aux2 definitions, a forced-deletion rule and a
// delete-or-insert rule with a choice goal.
func (b *builder) emitReferential(id core.PeerID, d *constraint.Dependency) error {
	b.counter++
	tag := fmt.Sprintf("%s_%s", sanitize(string(id)), sanitize(d.Name))

	var mutHead term.Atom
	var fixedHeads []term.Atom
	for _, h := range d.Head {
		if b.mutable[h.Pred] {
			mutHead = h
		} else {
			fixedHeads = append(fixedHeads, h)
		}
	}

	bodyVars := map[string]bool{}
	for _, a := range d.Body {
		for _, v := range a.Vars(nil) {
			bodyVars[v] = true
		}
	}
	exVars := map[string]bool{}
	for _, v := range d.ExVars {
		exVars[v] = true
	}
	// Frontier variables: head-atom variables bound by the body.
	frontier := func(atoms []term.Atom) []term.Term {
		var seen []string
		for _, a := range atoms {
			for _, v := range a.Vars(nil) {
				if bodyVars[v] && !containsStr(seen, v) {
					seen = append(seen, v)
				}
			}
		}
		out := make([]term.Term, len(seen))
		for i, v := range seen {
			out[i] = term.V(v)
		}
		return out
	}
	allFrontier := frontier(d.Head)
	provFrontier := frontier(fixedHeads)

	// aux1(frontier) :- headMutOrig, fixedHeads — the DEC instance is
	// already satisfied by original data (paper rule (7)).
	aux1 := term.Atom{Pred: "aux1_" + tag, Args: allFrontier}
	r1 := lp.Rule{Head: []lp.Literal{lp.Pos(aux1)}}
	r1.PosB = append(r1.PosB, lp.Pos(b.ref(mutHead)))
	for _, h := range fixedHeads {
		r1.PosB = append(r1.PosB, lp.Pos(b.ref(h)))
	}
	b.prog.Add(r1)

	// Witness providers: the fixed head atoms if any, else a domain
	// predicate for each existential variable.
	var providers []term.Atom
	if len(fixedHeads) > 0 {
		for _, h := range fixedHeads {
			providers = append(providers, b.ref(h))
		}
	} else {
		for _, w := range d.ExVars {
			providers = append(providers, term.Atom{Pred: "dom", Args: []term.Term{term.V(w)}})
			b.needDom()
		}
	}

	// aux2(provFrontier) :- providers — some witness is available
	// (paper rule (8)). Only meaningful with fixed providers.
	var aux2 *term.Atom
	if len(fixedHeads) > 0 {
		a2 := term.Atom{Pred: "aux2_" + tag, Args: provFrontier}
		aux2 = &a2
		r2 := lp.Rule{Head: []lp.Literal{lp.Pos(a2)}}
		for _, h := range fixedHeads {
			r2.PosB = append(r2.PosB, lp.Pos(b.ref(h)))
		}
		b.prog.Add(r2)
	}

	// Candidate body references and deletion disjuncts.
	var bodyLits []lp.Literal
	var delHeads []lp.Literal
	for _, a := range d.Body {
		bodyLits = append(bodyLits, lp.Pos(b.candRef(a)))
		if b.mutable[a.Pred] {
			delHeads = append(delHeads, lp.NegL(term.Atom{Pred: b.naming.Prime(a.Pred), Args: a.Args}))
		}
	}
	var cmps []lp.Cmp
	for _, c := range d.Cond {
		cmps = append(cmps, lp.Cmp{Op: c.Op, L: c.L, R: c.R})
	}

	// Forced deletion when no witness can exist (paper rule (6)); with
	// domain providers a witness always exists, so the rule is skipped.
	if aux2 != nil {
		r := lp.Rule{
			Head: delHeads,
			PosB: bodyLits,
			NegB: []lp.Literal{lp.Pos(aux1), lp.Pos(*aux2)},
			Cmps: cmps,
		}
		b.prog.Add(r)
	}

	// Delete-or-insert with choice (paper rule (9)).
	outs := make([]term.Term, len(d.ExVars))
	for i, w := range d.ExVars {
		outs[i] = term.V(w)
	}
	insHead := lp.Pos(term.Atom{Pred: b.naming.Prime(mutHead.Pred), Args: mutHead.Args})
	r := lp.Rule{
		Head: append(append([]lp.Literal{}, delHeads...), insHead),
		PosB: append(append([]lp.Literal{}, bodyLits...), posAll(providers)...),
		NegB: []lp.Literal{lp.Pos(aux1)},
		Cmps: cmps,
		Choice: []lp.ChoiceGoal{{
			Keys: choiceKeys(allFrontier, exVars),
			Outs: outs,
		}},
	}
	b.prog.Add(r)
	return nil
}

// choiceKeys filters the frontier down to body-bound variables (the
// choice key of the paper: the violation's identifying values).
func choiceKeys(frontier []term.Term, exVars map[string]bool) []term.Term {
	var out []term.Term
	for _, t := range frontier {
		if t.IsVar && !exVars[t.Name] {
			out = append(out, t)
		}
	}
	return out
}

func posAll(atoms []term.Atom) []lp.Literal {
	out := make([]lp.Literal, len(atoms))
	for i, a := range atoms {
		out[i] = lp.Pos(a)
	}
	return out
}

var negations = map[string]string{
	"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">",
}

func negateOp(op string) string {
	if n, ok := negations[op]; ok {
		return n
	}
	return "!=" // unreachable for validated constraints
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// domNeeded tracks whether the builder must emit domain facts.
func (b *builder) needDom() { b.needCand["\x00dom"] = true }

// emitFacts adds the extensional database: the facts of every relation
// referenced by the program, and domain facts if needed.
func (b *builder) emitFacts(p *core.Peer, includeAll bool) {
	preds := b.prog.Preds()
	for _, id := range b.sys.Peers() {
		peer, _ := b.sys.Peer(id)
		for _, rel := range peer.Schema.Relations() {
			if !preds[rel] && !(b.mutable[rel] && b.opt.relevant(rel)) {
				continue
			}
			for _, t := range peer.Inst.Tuples(rel) {
				args := make([]term.Term, len(t))
				for i, v := range t {
					args[i] = term.C(v)
				}
				b.prog.AddFactAtom(term.Atom{Pred: rel, Args: args})
			}
		}
	}
	if b.needCand["\x00dom"] {
		delete(b.needCand, "\x00dom")
		for _, c := range b.sys.Global().ActiveDomain() {
			b.prog.AddFactAtom(term.NewAtom("dom", term.C(c)))
		}
	}
}
