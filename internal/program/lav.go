package program

import (
	"fmt"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/lp/solve"
	"repro/internal/relation"
	"repro/internal/term"
)

// Annotation constants of the LAV specification (Section 4.2 and the
// paper's appendix): td = "true in the legal instance", ta/fa =
// "advised true/false by the repair layer", tss = "true in the
// solution".
const (
	AnnTD  = "td"
	AnnTA  = "ta"
	AnnFA  = "fa"
	AnnTSS = "tss"
)

// LAVSuffix is appended to a relation name for its annotated version.
const LAVSuffix = "_l"

// BuildLAV compiles the peer's specification in the local-as-view
// style of Section 4.2: every relation gets an annotated version
// rel_l(x̄, ann) with the three layers of the appendix —
//
//	layer 1 (legal instances): rel_l(x̄,td) :- rel(x̄), plus closure
//	    constraints for closed/clopen sources;
//	layer 2 (repairs): persistence td∧¬fa → tss, promotion ta → tss,
//	    the ta/fa conflict constraint, and one repair rule per DEC
//	    violation (fa heads for deletions — allowed on closed
//	    relations — and ta heads with a choice goal for insertions —
//	    allowed on open relations);
//	layer 3: local ICs as denial constraints over tss atoms.
//
// Source labels are derived from the DECs and trust as the paper does
// for its example: relations that may lose tuples are closed, relations
// that may gain tuples are open, fixed relations are clopen. The
// supported DEC class is the same as BuildDirect's. Solutions are the
// tss projections of the stable models (ModelsToSolutionsLAV).
func BuildLAV(s *core.System, id core.PeerID) (*lp.Program, *Naming, error) {
	p, ok := s.Peer(id)
	if !ok {
		return nil, nil, fmt.Errorf("program: unknown peer %s", id)
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	b := &lavBuilder{
		sys:     s,
		peer:    p,
		naming:  newNaming(),
		prog:    &lp.Program{},
		mutable: map[string]bool{},
		imports: map[string][]string{},
	}
	b.naming.PrimeSuffix = LAVSuffix
	if err := b.build(); err != nil {
		return nil, nil, err
	}
	return b.prog, b.naming, nil
}

type lavBuilder struct {
	sys     *core.System
	peer    *core.Peer
	naming  *Naming
	prog    *lp.Program
	mutable map[string]bool
	// imports maps an open relation to its import source relations.
	imports map[string][]string
	// deletable/insertable are the closed/open label components.
	deletable  map[string]bool
	insertable map[string]bool
	counter    int
}

func (b *lavBuilder) build() error {
	p := b.peer
	for _, rel := range p.Schema.Relations() {
		b.mutable[rel] = true
	}
	for _, q := range b.sys.TrustedPeers(p.ID, core.TrustSame) {
		qp, _ := b.sys.Peer(q)
		for _, rel := range qp.Schema.Relations() {
			b.mutable[rel] = true
		}
	}

	decs := b.trustedDECs()
	b.deletable = map[string]bool{}
	b.insertable = map[string]bool{}
	bodyPreds := map[string]bool{}
	var refs, egds []*constraint.Dependency

	for _, d := range decs {
		kind, err := classify(d, b.mutable)
		if err != nil {
			return err
		}
		for _, a := range d.Body {
			bodyPreds[a.Pred] = true
		}
		switch kind {
		case kindInclusion:
			src, dst := d.Body[0], d.Head[0]
			switch {
			case b.mutable[dst.Pred] && !b.mutable[src.Pred]:
				b.imports[dst.Pred] = append(b.imports[dst.Pred], src.Pred)
				b.insertable[dst.Pred] = true
			case b.mutable[src.Pred] && !b.mutable[dst.Pred]:
				b.deletable[src.Pred] = true
				egds = append(egds, d) // handled as forced deletion below
			default:
				return fmt.Errorf("program: inclusion DEC %s with both sides mutable is outside the supported class", d.Name)
			}
		case kindEGD, kindDenial:
			for _, a := range d.Body {
				if b.mutable[a.Pred] {
					b.deletable[a.Pred] = true
				}
			}
			egds = append(egds, d)
		case kindReferential:
			for _, a := range d.Body {
				if b.mutable[a.Pred] {
					b.deletable[a.Pred] = true
				}
			}
			for _, h := range d.Head {
				if b.mutable[h.Pred] {
					b.insertable[h.Pred] = true
				}
			}
			refs = append(refs, d)
		}
	}
	for pred := range b.insertable {
		if bodyPreds[pred] && !b.onlyAux1Body(pred, refs) {
			return fmt.Errorf("program: cyclic DECs: insertion target %s also appears in a DEC body", pred)
		}
	}

	// Layer 1 + 2 per relation.
	referenced := b.referencedRelations(decs)
	for _, rel := range referenced {
		b.emitRelationLayers(rel)
	}

	// Repair rules.
	for _, d := range egds {
		if err := b.emitLAVViolation(d); err != nil {
			return err
		}
	}
	for _, d := range refs {
		if err := b.emitLAVReferential(d); err != nil {
			return err
		}
	}

	// Layer 3: local ICs over tss atoms.
	for _, ic := range p.ICs {
		if ic.IsTGD() {
			return fmt.Errorf("program: local IC %s must be a denial or EGD", ic.Name)
		}
		r := lp.Rule{}
		for _, a := range ic.Body {
			r.PosB = append(r.PosB, lp.Pos(b.ann(a, AnnTSS)))
		}
		for _, c := range ic.Cond {
			r.Cmps = append(r.Cmps, lp.Cmp{Op: c.Op, L: c.L, R: c.R})
		}
		for _, c := range ic.HeadEq {
			r.Cmps = append(r.Cmps, lp.Cmp{Op: negateOp(c.Op), L: c.L, R: c.R})
		}
		b.prog.Add(r)
	}

	// Facts.
	for _, rel := range referenced {
		owner, _ := b.sys.Owner(rel)
		op, _ := b.sys.Peer(owner)
		for _, t := range op.Inst.Tuples(rel) {
			args := make([]term.Term, len(t))
			for i, v := range t {
				args[i] = term.C(v)
			}
			b.prog.AddFactAtom(term.Atom{Pred: rel, Args: args})
		}
	}
	return nil
}

// onlyAux1Body reports whether the insertion target appears in DEC
// bodies only through the satisfaction check of its own referential
// DEC (the aux1 pattern reads the original relation, which is allowed).
func (b *lavBuilder) onlyAux1Body(pred string, refs []*constraint.Dependency) bool {
	for _, d := range refs {
		for _, a := range d.Body {
			if a.Pred == pred {
				return false
			}
		}
	}
	return true
}

func (b *lavBuilder) trustedDECs() []*constraint.Dependency {
	var out []*constraint.Dependency
	for _, lvl := range []core.TrustLevel{core.TrustLess, core.TrustSame} {
		for _, q := range b.sys.TrustedPeers(b.peer.ID, lvl) {
			out = append(out, b.peer.DECs[q]...)
		}
	}
	return out
}

func (b *lavBuilder) referencedRelations(decs []*constraint.Dependency) []string {
	seen := map[string]bool{}
	var out []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, rel := range b.peer.Schema.Relations() {
		add(rel)
	}
	for _, d := range decs {
		for pred := range d.Preds() {
			add(pred)
		}
	}
	return out
}

// ann builds the annotated atom rel_l(args..., annotation).
func (b *lavBuilder) ann(a term.Atom, annotation string) term.Atom {
	args := make([]term.Term, 0, len(a.Args)+1)
	args = append(args, a.Args...)
	args = append(args, term.C(annotation))
	return term.Atom{Pred: b.naming.Prime(a.Pred), Args: args}
}

func (b *lavBuilder) relAtomVars(rel string) term.Atom {
	owner, _ := b.sys.Owner(rel)
	op, _ := b.sys.Peer(owner)
	d, _ := op.Schema.Decl(rel)
	args := make([]term.Term, d.Arity)
	for i := range args {
		args[i] = term.V(fmt.Sprintf("X%d", i+1))
	}
	return term.Atom{Pred: rel, Args: args}
}

// emitRelationLayers emits the td load, closure constraint, tss rules
// and the ta/fa conflict constraint for one relation, according to its
// label.
func (b *lavBuilder) emitRelationLayers(rel string) {
	base := b.relAtomVars(rel)
	td := b.ann(base, AnnTD)
	tss := b.ann(base, AnnTSS)
	ta := b.ann(base, AnnTA)
	fa := b.ann(base, AnnFA)

	// Layer 1: td from the source; closure for non-open content.
	b.prog.Add(lp.Rule{Head: []lp.Literal{lp.Pos(td)}, PosB: []lp.Literal{lp.Pos(base)}})
	b.prog.Add(lp.Rule{PosB: []lp.Literal{lp.Pos(td)}, NegB: []lp.Literal{lp.Pos(base)}})

	del := b.deletable[rel]
	ins := b.insertable[rel]

	// Layer 2: tss persistence and promotion.
	persist := lp.Rule{Head: []lp.Literal{lp.Pos(tss)}, PosB: []lp.Literal{lp.Pos(td)}}
	if del {
		persist.NegB = []lp.Literal{lp.Pos(fa)}
	}
	b.prog.Add(persist)
	if ins {
		b.prog.Add(lp.Rule{Head: []lp.Literal{lp.Pos(tss)}, PosB: []lp.Literal{lp.Pos(ta)}})
	}
	if del && ins {
		b.prog.Add(lp.Rule{PosB: []lp.Literal{lp.Pos(ta), lp.Pos(fa)}})
	}

	// Imports: open relations absorb their sources' td content.
	for _, src := range b.imports[rel] {
		srcTD := b.ann(term.Atom{Pred: src, Args: base.Args}, AnnTD)
		b.prog.Add(lp.Rule{
			Head: []lp.Literal{lp.Pos(b.ann(base, AnnTA))},
			PosB: []lp.Literal{lp.Pos(srcTD)},
			NegB: []lp.Literal{lp.Pos(td)},
		})
		// Imported tuples may not be advised false.
		if del {
			b.prog.Add(lp.Rule{PosB: []lp.Literal{lp.Pos(srcTD), lp.Pos(fa)}})
		}
	}
}

// bodyAlternatives expands a violation body atom into its td reference
// plus one alternative per import source (the candidate upper bound of
// the GAV compiler, in annotated form).
func (b *lavBuilder) bodyAlternatives(a term.Atom) []bodyAlt {
	alts := []bodyAlt{{atom: b.ann(a, AnnTD), deletable: b.mutable[a.Pred] && b.deletable[a.Pred], target: a}}
	for _, src := range b.imports[a.Pred] {
		alts = append(alts, bodyAlt{
			atom:   b.ann(term.Atom{Pred: src, Args: a.Args}, AnnTD),
			target: a, // imported content is not deletable
		})
	}
	return alts
}

type bodyAlt struct {
	atom      term.Atom
	deletable bool
	target    term.Atom
}

// emitLAVViolation compiles an EGD, denial or validation inclusion
// into fa-head repair rules, one per combination of body alternatives.
func (b *lavBuilder) emitLAVViolation(d *constraint.Dependency) error {
	// Validation inclusion: src ⊆ fixed dst → forced deletion.
	if d.IsFullTGD() {
		src, dst := d.Body[0], d.Head[0]
		for _, alt := range b.bodyAlternatives(src) {
			r := lp.Rule{
				PosB: []lp.Literal{lp.Pos(alt.atom)},
				NegB: []lp.Literal{lp.Pos(b.ann(dst, AnnTD))},
			}
			if alt.deletable {
				r.Head = []lp.Literal{lp.Pos(b.ann(src, AnnFA))}
			}
			b.prog.Add(r)
		}
		return nil
	}
	violations := d.HeadEq
	if d.IsDenial() {
		violations = []constraint.Comparison{{}}
	}
	// Cross-product of body alternatives.
	var combos func(i int, cur []bodyAlt)
	var all [][]bodyAlt
	combos = func(i int, cur []bodyAlt) {
		if i == len(d.Body) {
			all = append(all, append([]bodyAlt{}, cur...))
			return
		}
		for _, alt := range b.bodyAlternatives(d.Body[i]) {
			combos(i+1, append(cur, alt))
		}
	}
	combos(0, nil)

	for _, eq := range violations {
		for _, combo := range all {
			r := lp.Rule{}
			for _, alt := range combo {
				r.PosB = append(r.PosB, lp.Pos(alt.atom))
				if alt.deletable {
					r.Head = append(r.Head, lp.Pos(b.ann(alt.target, AnnFA)))
				}
			}
			for _, c := range d.Cond {
				r.Cmps = append(r.Cmps, lp.Cmp{Op: c.Op, L: c.L, R: c.R})
			}
			if !d.IsDenial() {
				r.Cmps = append(r.Cmps, lp.Cmp{Op: negateOp(eq.Op), L: eq.L, R: eq.R})
			}
			b.prog.Add(r)
		}
	}
	return nil
}

// emitLAVReferential compiles a simple referential DEC into the
// appendix pattern (aux1/aux2 over td, fa/ta disjunction with choice).
func (b *lavBuilder) emitLAVReferential(d *constraint.Dependency) error {
	b.counter++
	tag := fmt.Sprintf("lav_%s_%s", sanitize(string(b.peer.ID)), sanitize(d.Name))

	var mutHead term.Atom
	var fixedHeads []term.Atom
	for _, h := range d.Head {
		if b.mutable[h.Pred] {
			mutHead = h
		} else {
			fixedHeads = append(fixedHeads, h)
		}
	}

	bodyVars := map[string]bool{}
	for _, a := range d.Body {
		for _, v := range a.Vars(nil) {
			bodyVars[v] = true
		}
	}
	exVars := map[string]bool{}
	for _, v := range d.ExVars {
		exVars[v] = true
	}
	frontier := func(atoms []term.Atom) []term.Term {
		var seen []string
		for _, a := range atoms {
			for _, v := range a.Vars(nil) {
				if bodyVars[v] && !containsStr(seen, v) {
					seen = append(seen, v)
				}
			}
		}
		out := make([]term.Term, len(seen))
		for i, v := range seen {
			out[i] = term.V(v)
		}
		return out
	}
	allFrontier := frontier(d.Head)
	provFrontier := frontier(fixedHeads)
	if len(fixedHeads) == 0 {
		return fmt.Errorf("program: LAV referential DEC %s needs fixed witness providers", d.Name)
	}

	aux1 := term.Atom{Pred: "aux1_" + tag, Args: allFrontier}
	r1 := lp.Rule{Head: []lp.Literal{lp.Pos(aux1)}, PosB: []lp.Literal{lp.Pos(b.ann(mutHead, AnnTD))}}
	for _, h := range fixedHeads {
		r1.PosB = append(r1.PosB, lp.Pos(b.ann(h, AnnTD)))
	}
	b.prog.Add(r1)

	aux2 := term.Atom{Pred: "aux2_" + tag, Args: provFrontier}
	r2 := lp.Rule{Head: []lp.Literal{lp.Pos(aux2)}}
	for _, h := range fixedHeads {
		r2.PosB = append(r2.PosB, lp.Pos(b.ann(h, AnnTD)))
	}
	b.prog.Add(r2)

	// Body alternative combinations (as for EGDs).
	var all [][]bodyAlt
	var combos func(i int, cur []bodyAlt)
	combos = func(i int, cur []bodyAlt) {
		if i == len(d.Body) {
			all = append(all, append([]bodyAlt{}, cur...))
			return
		}
		for _, alt := range b.bodyAlternatives(d.Body[i]) {
			combos(i+1, append(cur, alt))
		}
	}
	combos(0, nil)

	outs := make([]term.Term, len(d.ExVars))
	for i, w := range d.ExVars {
		outs[i] = term.V(w)
	}
	for _, combo := range all {
		var bodyLits []lp.Literal
		var delHeads []lp.Literal
		for _, alt := range combo {
			bodyLits = append(bodyLits, lp.Pos(alt.atom))
			if alt.deletable {
				delHeads = append(delHeads, lp.Pos(b.ann(alt.target, AnnFA)))
			}
		}
		var cmps []lp.Cmp
		for _, c := range d.Cond {
			cmps = append(cmps, lp.Cmp{Op: c.Op, L: c.L, R: c.R})
		}
		// Forced deletion (no witness provider).
		b.prog.Add(lp.Rule{
			Head: delHeads,
			PosB: bodyLits,
			NegB: []lp.Literal{lp.Pos(aux1), lp.Pos(aux2)},
			Cmps: cmps,
		})
		// Delete-or-insert with choice.
		var provLits []lp.Literal
		for _, h := range fixedHeads {
			provLits = append(provLits, lp.Pos(b.ann(h, AnnTD)))
		}
		b.prog.Add(lp.Rule{
			Head: append(append([]lp.Literal{}, delHeads...), lp.Pos(b.ann(mutHead, AnnTA))),
			PosB: append(append([]lp.Literal{}, bodyLits...), provLits...),
			NegB: []lp.Literal{lp.Pos(aux1)},
			Cmps: cmps,
			Choice: []lp.ChoiceGoal{{
				Keys: choiceKeys(allFrontier, exVars),
				Outs: outs,
			}},
		})
	}
	return nil
}

// SolutionsViaLAV computes the peer's solutions through the LAV
// program: stable models projected on the tss annotation.
func SolutionsViaLAV(s *core.System, id core.PeerID, opt RunOptions) ([]*relation.Instance, error) {
	prog, naming, err := BuildLAV(s, id)
	if err != nil {
		return nil, err
	}
	models, err := Solve(prog, opt)
	if err != nil {
		return nil, err
	}
	return ModelsToSolutionsLAV(s, naming, models)
}

// ModelsToSolutionsLAV projects stable models of a LAV program onto
// solution instances via their tss atoms.
func ModelsToSolutionsLAV(s *core.System, naming *Naming, models []solve.Model) ([]*relation.Instance, error) {
	base := s.Global()
	seen := map[string]bool{}
	var out []*relation.Instance
	for _, m := range models {
		inst := base.Clone()
		for rel := range naming.Primed {
			for _, t := range inst.Tuples(rel) {
				inst.Delete(rel, t)
			}
		}
		for _, key := range m {
			pred := atomPredOf(key)
			rel, ok := naming.IsPrimed(pred)
			if !ok {
				continue
			}
			args := solve.Args(key)
			if len(args) == 0 || args[len(args)-1] != AnnTSS {
				continue
			}
			inst.Insert(rel, relation.Tuple(args[:len(args)-1]))
		}
		k := inst.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, inst)
		}
	}
	sortInstances(out)
	return out, nil
}

func sortInstances(insts []*relation.Instance) {
	for i := 1; i < len(insts); i++ {
		for j := i; j > 0 && insts[j].Key() < insts[j-1].Key(); j-- {
			insts[j], insts[j-1] = insts[j-1], insts[j]
		}
	}
}
