package program

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/workload"
)

// TestTransitiveChainDepth3: imports cascade through a three-peer
// chain; the root's relation absorbs everything downstream.
func TestTransitiveChainDepth3(t *testing.T) {
	s := workload.Chain(3, 1, 9)
	sols, err := SolutionsViaLP(s, "P0", RunOptions{Transitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d", len(sols))
	}
	if got := sols[0].Count("t0"); got != 3 {
		t.Fatalf("t0 = %d, want 3 (own + P1 + P2 through P1)", got)
	}
}

// TestTransitiveDiamond: P imports from both Q1 and Q2, which both
// import from R — the diamond must be compiled once per peer and R's
// facts must reach P through both paths without duplication issues.
func TestTransitiveDiamond(t *testing.T) {
	p := core.NewPeer("P").Declare("tp", 2).
		SetTrust("Q1", core.TrustLess).SetTrust("Q2", core.TrustLess).
		AddDEC("Q1", constraint.Inclusion("iq1", "tq1", "tp", 2)).
		AddDEC("Q2", constraint.Inclusion("iq2", "tq2", "tp", 2))
	q1 := core.NewPeer("Q1").Declare("tq1", 2).
		SetTrust("R", core.TrustLess).
		AddDEC("R", constraint.Inclusion("ir1", "tr", "tq1", 2))
	q2 := core.NewPeer("Q2").Declare("tq2", 2).
		SetTrust("R", core.TrustLess).
		AddDEC("R", constraint.Inclusion("ir2", "tr", "tq2", 2))
	r := core.NewPeer("R").Declare("tr", 2).Fact("tr", "x", "y")
	s := core.NewSystem().MustAddPeer(p).MustAddPeer(q1).MustAddPeer(q2).MustAddPeer(r)

	prog, _, err := BuildTransitive(s, "P")
	if err != nil {
		t.Fatal(err)
	}
	// Each peer must be compiled exactly once: one persistence rule per
	// mutable relation.
	count := strings.Count(prog.String(), "tq1_p(X1,X2) :- tq1(X1,X2), not -tq1_p(X1,X2).")
	if count != 1 {
		t.Fatalf("Q1 compiled %d times:\n%s", count, prog)
	}
	sols, err := SolutionsViaLP(s, "P", RunOptions{Transitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %d", len(sols))
	}
	if !sols[0].Has("tp", relation.Tuple{"x", "y"}) {
		t.Fatalf("R's fact did not reach P: %v", sols[0])
	}
	if !sols[0].Has("tq1", relation.Tuple{"x", "y"}) || !sols[0].Has("tq2", relation.Tuple{"x", "y"}) {
		t.Fatalf("intermediate imports missing: %v", sols[0])
	}
}

// TestTransitiveCycleRejected: cyclic trust/DEC dependencies are
// rejected, as the paper requires ("a problematic case appears when
// there are implicit cyclic dependencies").
func TestTransitiveCycleRejected(t *testing.T) {
	a := core.NewPeer("A").Declare("ta", 2).
		SetTrust("B", core.TrustLess).
		AddDEC("B", constraint.Inclusion("iab", "tb", "ta", 2))
	b := core.NewPeer("B").Declare("tb", 2).
		SetTrust("A", core.TrustLess).
		AddDEC("A", constraint.Inclusion("iba", "ta", "tb", 2))
	s := core.NewSystem().MustAddPeer(a).MustAddPeer(b)
	if _, _, err := BuildTransitive(s, "A"); err == nil {
		t.Fatal("cyclic overlay must be rejected")
	}
}

// TestTransitiveWithConflictDownstream: an EGD at the root interacting
// with facts imported transitively (Example 4's pattern with an EGD
// instead of the referential DEC).
func TestTransitiveWithConflictDownstream(t *testing.T) {
	p := core.NewPeer("P").Declare("rp", 2).
		Fact("rp", "k", "v1").
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.KeyEGD("egd", "rp", "sq"))
	q := core.NewPeer("Q").Declare("sq", 2).
		SetTrust("C", core.TrustLess).
		AddDEC("C", constraint.Inclusion("inc", "uc", "sq", 2))
	c := core.NewPeer("C").Declare("uc", 2).Fact("uc", "k", "v2")
	s := core.NewSystem().MustAddPeer(p).MustAddPeer(q).MustAddPeer(c)

	// Direct: sq is empty, no conflict, P keeps its tuple.
	direct, err := SolutionsViaLP(s, "P", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 1 || !direct[0].Has("rp", relation.Tuple{"k", "v1"}) {
		t.Fatalf("direct = %v", instKeys(direct))
	}
	// Transitive: Q imports sq(k,v2); P's EGD now conflicts and P (the
	// only mutable side — sq is Q's and Q is more trusted) must drop
	// its tuple.
	trans, err := SolutionsViaLP(s, "P", RunOptions{Transitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(trans) != 1 {
		t.Fatalf("transitive = %v", instKeys(trans))
	}
	if trans[0].Has("rp", relation.Tuple{"k", "v1"}) {
		t.Fatalf("conflicting tuple survived: %v", trans[0])
	}
	if !trans[0].Has("sq", relation.Tuple{"k", "v2"}) {
		t.Fatalf("upstream import missing: %v", trans[0])
	}
}
