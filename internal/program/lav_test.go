package program

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestLAVSection31 reproduces the appendix through the generic LAV
// compiler: four answer sets, three distinct solutions, agreeing with
// both other engines.
func TestLAVSection31(t *testing.T) {
	s := core.Section31System()
	prog, naming, err := BuildLAV(s, "P")
	if err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	for _, want := range []string{
		"r1_l(X1,X2,td) :- r1(X1,X2).",
		"r1_l(X1,X2,tss) :- r1_l(X1,X2,td), not r1_l(X1,X2,fa).",
		"r2_l(X1,X2,tss) :- r2_l(X1,X2,ta).",
		"aux2_lav_P_dec3(Z) :- s2_l(Z,W,td).",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("LAV program missing %q:\n%s", want, text)
		}
	}
	models, err := Solve(prog, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("want the appendix's 4 stable models, got %d", len(models))
	}
	sols, err := ModelsToSolutionsLAV(s, naming, models)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SolutionsFor(s, "P", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInstances(want, sols) {
		t.Fatalf("LAV solutions differ:\ncore: %v\nlav:  %v", instKeys(want), instKeys(sols))
	}
}

// TestLAVExample1 checks the LAV route on Example 1 (EGD + import
// interplay through the td/ta/fa machinery).
func TestLAVExample1(t *testing.T) {
	s := core.Example1System()
	sols, err := SolutionsViaLAV(s, "P1", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInstances(want, FilterMinimal(s.Global(), sols)) {
		t.Fatalf("LAV solutions differ:\ncore: %v\nlav:  %v", instKeys(want), instKeys(sols))
	}
}

// TestLAVAgreesWithDirectRandom cross-validates the LAV and GAV
// compilers on random systems of both fixture shapes.
func TestLAVAgreesWithDirectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	doms := []string{"a", "b", "c"}
	for trial := 0; trial < 30; trial++ {
		var s *core.System
		var id core.PeerID
		if trial%2 == 0 {
			s = randomExample1System(rng, doms)
			id = "P1"
		} else {
			s = randomSection31System(rng, doms)
			id = "P"
		}
		direct, err := SolutionsViaLP(s, id, RunOptions{})
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		lav, err := SolutionsViaLAV(s, id, RunOptions{})
		if err != nil {
			t.Fatalf("trial %d: lav: %v", trial, err)
		}
		g := s.Global()
		if !sameInstances(FilterMinimal(g, direct), FilterMinimal(g, lav)) {
			t.Fatalf("trial %d: engines disagree on %s\ndirect: %v\nlav:    %v",
				trial, g, instKeys(direct), instKeys(lav))
		}
	}
}
