package program

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/lp/solve"
	"repro/internal/relation"
	"repro/internal/repair"
	"repro/internal/term"
)

// RunOptions configures LP-based solution computation.
type RunOptions struct {
	// MaxModels bounds answer-set enumeration; 0 means all.
	MaxModels int
	// UseShift applies the HCF shift of Section 4.1 before solving when
	// the ground program is head-cycle free.
	UseShift bool
	// Transitive uses the combined program of Section 4.3 instead of
	// the direct-case program.
	Transitive bool
	// Parallelism bounds the worker pools of the whole LP route: the
	// grounder (ground.Options.Parallelism), the stable-model search
	// (solve.Options.Parallelism) and the per-solution query evaluation
	// of PeerConsistentAnswersViaLP. 0 means grounder and solver stay
	// sequential and query evaluation uses GOMAXPROCS workers; 1 forces
	// everything sequential.
	Parallelism int
	// SolverOptions are passed through to the stable-model solver.
	Solver solve.Options
	// KeepDep and RelevantRels restrict the build to a query-relevance
	// slice (internal/slice): only kept DECs/ICs are compiled and only
	// relevant relations receive persistence rules and facts (see
	// BuildOptions). The grounder additionally prunes rules outside the
	// relevant predicates' dependency closure (ground.Options.Relevant).
	KeepDep      func(*constraint.Dependency) bool
	RelevantRels map[string]bool
	// PruneStats, when non-nil, receives the grounder's rule prune
	// counts for the sliced run.
	PruneStats *ground.PruneStats
}

// buildOptions projects the slicing fields onto BuildOptions.
func (o RunOptions) buildOptions() BuildOptions {
	return BuildOptions{KeepDep: o.KeepDep, RelevantRels: o.RelevantRels}
}

// groundRelevant derives the grounder's relevant-predicate seeds from
// the sliced relations: the relations themselves plus their primed
// versions (the predicates a query program and ModelsToSolutions read).
func (o RunOptions) groundRelevant(naming *Naming) map[string]bool {
	if o.RelevantRels == nil {
		return nil
	}
	seeds := make(map[string]bool, 2*len(o.RelevantRels))
	for rel := range o.RelevantRels {
		seeds[rel] = true
		if p, ok := naming.Primed[rel]; ok {
			seeds[p] = true
		}
	}
	return seeds
}

// Solve grounds and solves an already-built specification program,
// returning its stable models.
func Solve(prog *lp.Program, opt RunOptions) ([]solve.Model, error) {
	return solveWith(prog, opt, nil)
}

// solveWith is Solve with an optional relevant-predicate seed set for
// the grounder's rule pruning (nil grounds everything).
func solveWith(prog *lp.Program, opt RunOptions, relevant map[string]bool) ([]solve.Model, error) {
	u, err := lp.UnfoldChoice(prog)
	if err != nil {
		return nil, err
	}
	g, err := ground.GroundOpt(u, ground.Options{
		Parallelism: opt.Parallelism,
		Relevant:    relevant,
		PruneStats:  opt.PruneStats,
	})
	if err != nil {
		return nil, err
	}
	if opt.UseShift && solve.HCF(g) {
		g, err = solve.Shift(g)
		if err != nil {
			return nil, err
		}
	}
	so := opt.Solver
	if opt.MaxModels > 0 {
		so.MaxModels = opt.MaxModels
	}
	if so.Parallelism == 0 {
		so.Parallelism = opt.Parallelism
	}
	return solve.StableModels(g, so)
}

// SolutionsViaLP computes the solutions for a peer through the
// answer-set program (the Section 3 route): "the peer's solutions are
// in one to one correspondence with the answer sets of the program".
// The result is directly comparable with core.SolutionsFor.
func SolutionsViaLP(s *core.System, id core.PeerID, opt RunOptions) ([]*relation.Instance, error) {
	var prog *lp.Program
	var naming *Naming
	var err error
	if opt.Transitive {
		prog, naming, err = BuildTransitiveOpt(s, id, opt.buildOptions())
	} else {
		prog, naming, err = BuildDirectOpt(s, id, opt.buildOptions())
	}
	if err != nil {
		return nil, err
	}
	models, err := solveWith(prog, opt, opt.groundRelevant(naming))
	if err != nil {
		return nil, err
	}
	return modelsToSolutions(s, naming, models, opt.RelevantRels)
}

// ModelsToSolutions projects stable models onto solution instances:
// each compiled relation takes the content of its primed version; all
// other relations keep their original tuples. Models that project to
// the same instance are merged (the paper's M2 and M4 yield the same
// solution).
func ModelsToSolutions(s *core.System, naming *Naming, models []solve.Model) ([]*relation.Instance, error) {
	return modelsToSolutions(s, naming, models, nil)
}

// modelsToSolutions is ModelsToSolutions with an optional relation
// restriction: a sliced run projects each solution onto the relevant
// relations, matching the restricted instances the repair route
// produces under the same slice.
func modelsToSolutions(s *core.System, naming *Naming, models []solve.Model, relevant map[string]bool) ([]*relation.Instance, error) {
	base := s.Global()
	if relevant != nil {
		base = base.RestrictRels(relevant)
	}
	seen := map[string]bool{}
	var out []*relation.Instance
	for _, m := range models {
		inst := base.Clone()
		// Clear compiled relations, then fill from primed atoms.
		for rel := range naming.Primed {
			for _, t := range inst.Tuples(rel) {
				inst.Delete(rel, t)
			}
		}
		for _, key := range m {
			pred := atomPredOf(key)
			rel, ok := naming.IsPrimed(pred)
			if !ok {
				continue
			}
			args := solve.Args(key)
			inst.Insert(rel, relation.Tuple(args))
		}
		k := inst.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, inst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

func atomPredOf(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '(' {
			return key[:i]
		}
	}
	return key
}

// PeerConsistentAnswersViaLP computes the PCAs of Definition 5 through
// the program: solutions are materialized from the answer sets, each is
// restricted to the peer's own schema, and the query answers are
// intersected (cautious reasoning at the level of query results).
func PeerConsistentAnswersViaLP(s *core.System, id core.PeerID, q foquery.Formula, vars []string, opt RunOptions) ([]relation.Tuple, error) {
	p, ok := s.Peer(id)
	if !ok {
		return nil, fmt.Errorf("program: unknown peer %s", id)
	}
	sols, err := SolutionsViaLP(s, id, opt)
	if err != nil {
		return nil, err
	}
	if len(sols) == 0 {
		return nil, core.ErrNoSolutions
	}
	restricted := make([]*relation.Instance, len(sols))
	for i, r := range sols {
		restricted[i] = r.Restrict(p.Schema)
	}
	return repair.IntersectAnswersOpt(restricted, q, vars, repair.Options{Parallelism: opt.Parallelism})
}

// ConjunctiveQueryProgram appends a query rule
//
//	ans(x̄) :- L1', ..., Lk'.
//
// to a specification program, with every atom over a compiled relation
// replaced by its primed version — the query-program technique of
// Section 3.2 ("AnsQ(x,z) ← R'1(x,y), R'2(x,y)"). Atoms, comparisons
// and a final projection list are supported (conjunctive queries).
func ConjunctiveQueryProgram(prog *lp.Program, naming *Naming, atoms []term.Atom, cmps []lp.Cmp, vars []string) (*lp.Program, error) {
	out := prog.Clone()
	r := lp.Rule{}
	args := make([]term.Term, len(vars))
	for i, v := range vars {
		args[i] = term.V(v)
	}
	r.Head = []lp.Literal{lp.Pos(term.Atom{Pred: "ans", Args: args})}
	for _, a := range atoms {
		pred := a.Pred
		if p, ok := naming.Primed[pred]; ok {
			pred = p
		}
		r.PosB = append(r.PosB, lp.Pos(term.Atom{Pred: pred, Args: a.Args}))
	}
	r.Cmps = append(r.Cmps, cmps...)
	if err := r.Safe(); err != nil {
		return nil, err
	}
	out.Add(r)
	return out, nil
}

// CautiousAnswers runs a query program and returns the tuples of the
// ans predicate true in every answer set (skeptical answer set
// semantics, as DLV would be used in the paper). The boolean reports
// whether any answer set exists.
func CautiousAnswers(prog *lp.Program, opt RunOptions) ([]relation.Tuple, bool, error) {
	models, err := Solve(prog, opt)
	if err != nil {
		return nil, false, err
	}
	keys, has := solve.Cautious(models, "ans")
	if !has {
		return nil, false, nil
	}
	out := make([]relation.Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, relation.Tuple(solve.Args(k)))
	}
	return out, true, nil
}
