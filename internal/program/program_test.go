package program

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/relation"
	"repro/internal/term"
)

func sameInstances(a, b []*relation.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func instKeys(insts []*relation.Instance) []string {
	out := make([]string, len(insts))
	for i, in := range insts {
		out[i] = in.String()
	}
	return out
}

// TestDirectProgramExample1 cross-validates the LP engine against the
// model-theoretic engine on the paper's Example 1: same two solutions.
func TestDirectProgramExample1(t *testing.T) {
	s := core.Example1System()
	want, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolutionsViaLP(s, "P1", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInstances(want, got) {
		t.Fatalf("LP solutions differ:\ncore: %v\nlp:   %v", instKeys(want), instKeys(got))
	}
	if len(got) != 2 {
		t.Fatalf("Example 1 must have 2 solutions, got %d", len(got))
	}
}

// TestDirectProgramSection31 cross-validates on the Section 3.1
// referential scenario: three solutions.
func TestDirectProgramSection31(t *testing.T) {
	s := core.Section31System()
	want, err := core.SolutionsFor(s, "P", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolutionsViaLP(s, "P", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInstances(want, got) {
		t.Fatalf("LP solutions differ:\ncore: %v\nlp:   %v", instKeys(want), instKeys(got))
	}
	if len(got) != 3 {
		t.Fatalf("Section 3.1 must have 3 solutions, got %d", len(got))
	}
}

// TestDirectProgramShape31 checks the emitted program has the paper's
// rule shapes (persistence, aux1, aux2, forced delete, choice).
func TestDirectProgramShape31(t *testing.T) {
	s := core.Section31System()
	prog, naming, err := BuildDirect(s, "P")
	if err != nil {
		t.Fatal(err)
	}
	text := prog.String()
	for _, want := range []string{
		"r1_p(X1,X2) :- r1(X1,X2), not -r1_p(X1,X2).",                                                   // rule (4)
		"r2_p(X1,X2) :- r2(X1,X2), not -r2_p(X1,X2).",                                                   // rule (5)
		"aux1_P_dec3(X,Z) :- r2(X,W), s2(Z,W).",                                                         // rule (7)
		"aux2_P_dec3(Z) :- s2(Z,W).",                                                                    // rule (8)
		"-r1_p(X,Y) :- r1(X,Y), s1(Z,Y), not aux1_P_dec3(X,Z), not aux2_P_dec3(Z).",                     // rule (6)
		"-r1_p(X,Y) v r2_p(X,W) :- r1(X,Y), s1(Z,Y), s2(Z,W), not aux1_P_dec3(X,Z), choice((X,Z),(W)).", // rule (9)
	} {
		if !strings.Contains(text, want) {
			t.Errorf("program missing rule %q:\n%s", want, text)
		}
	}
	if naming.Primed["r1"] != "r1_p" || naming.Primed["r2"] != "r2_p" {
		t.Fatalf("naming = %+v", naming.Primed)
	}
}

// TestTransitiveExample4 reproduces Example 4: the combined program has
// exactly the paper's three solutions, which the direct case misses.
func TestTransitiveExample4(t *testing.T) {
	s := core.Example4System()

	// Direct case: P's DEC is satisfied (s1 is empty), sole solution is
	// the original instance.
	direct, err := SolutionsViaLP(s, "P", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != 1 || !direct[0].Equal(s.Global()) {
		t.Fatalf("direct solutions = %v", instKeys(direct))
	}

	// Transitive case: Q first imports U into S1; P must then react.
	got, err := SolutionsViaLP(s, "P", RunOptions{Transitive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("want the paper's 3 solutions, got %d: %v", len(got), instKeys(got))
	}
	for _, sol := range got {
		// In every solution Q has imported S1(c,b) and kept S2.
		if !sol.Has("s1", relation.Tuple{"c", "b"}) || sol.Count("s2") != 2 || !sol.Has("u", relation.Tuple{"c", "b"}) {
			t.Fatalf("upstream repair wrong in %v", sol)
		}
	}
	var del, insE, insF bool
	for _, sol := range got {
		switch {
		case !sol.Has("r1", relation.Tuple{"a", "b"}):
			del = true
		case sol.Has("r2", relation.Tuple{"a", "e"}):
			insE = true
		case sol.Has("r2", relation.Tuple{"a", "f"}):
			insF = true
		}
	}
	if !del || !insE || !insF {
		t.Fatalf("solution shapes: del=%v insE=%v insF=%v\n%v", del, insE, insF, instKeys(got))
	}
}

// TestPCAViaLPAgreesWithCore checks Definition 5 computed through the
// program equals the model-theoretic PCAs (Example 2).
func TestPCAViaLPAgreesWithCore(t *testing.T) {
	s := core.Example1System()
	q := foquery.MustParse("r1(X,Y)")
	want, err := core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := PeerConsistentAnswersViaLP(s, "P1", q, []string{"X", "Y"}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 3 || len(got) != len(want) {
		t.Fatalf("PCAs: core=%v lp=%v", want, got)
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("PCAs differ: core=%v lp=%v", want, got)
		}
	}
}

// TestConjunctiveQueryProgram exercises the Section 3.2 query-program
// route: AnsQ(x,z) :- R'1(x,y), R'2(z,y) under skeptical semantics.
func TestConjunctiveQueryProgram(t *testing.T) {
	s := core.Section31System()
	prog, naming, err := BuildDirect(s, "P")
	if err != nil {
		t.Fatal(err)
	}
	// Q(x,z): ∃y (R1(x,y) ∧ R2(z,y)) — atoms rewritten onto primed
	// relations by ConjunctiveQueryProgram.
	qp, err := ConjunctiveQueryProgram(prog, naming, []term.Atom{
		term.NewAtom("r1", term.V("X"), term.V("Y")),
		term.NewAtom("r2", term.V("Z"), term.V("Y")),
	}, nil, []string{"X", "Z"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qp.String(), "ans(X,Z) :- r1_p(X,Y), r2_p(Z,Y).") {
		t.Fatalf("query rule missing:\n%s", qp)
	}
	ans, has, err := CautiousAnswers(qp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Fatal("program should have answer sets")
	}
	// The deletion solution empties R1, so no cautious answers — in
	// agreement with the Definition 5 computation in core_test.
	if len(ans) != 0 {
		t.Fatalf("cautious answers = %v, want none", ans)
	}
	// Unsafe query rules are rejected.
	if _, err := ConjunctiveQueryProgram(prog, naming, []term.Atom{
		term.NewAtom("r1", term.V("X"), term.V("Y")),
	}, nil, []string{"Z"}); err == nil {
		t.Fatal("unsafe query variable must be rejected")
	}
}

// TestLocalICDenialLayer contrasts the two treatments of local ICs the
// paper offers in Section 3.2 (experiment E7). The LP compiler uses the
// first: the FD becomes a program denial constraint that *prunes*
// solutions violating it. The model-theoretic engine implements
// condition (a) of Definition 4 directly and may additionally *repair*
// the local IC (the paper's "more flexible alternative" of a second
// repair layer). With r2 = {(a,g)} and the FD on r2:
//
//   - pruning semantics: inserting (a,e)/(a,f) violates the FD, so only
//     the deletion solution survives;
//   - repairing semantics: the insert solutions survive by additionally
//     dropping (a,g).
func TestLocalICDenialLayer(t *testing.T) {
	s := section31WithFD()
	sols, err := SolutionsViaLP(s, "P", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("denial layer: want 1 solution, got %d: %v", len(sols), instKeys(sols))
	}
	if sols[0].Has("r1", relation.Tuple{"a", "b"}) || !sols[0].Has("r2", relation.Tuple{"a", "g"}) {
		t.Fatalf("deletion solution expected, got %v", sols[0])
	}

	repairing, err := core.SolutionsFor(s, "P", core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(repairing) != 3 {
		t.Fatalf("repairing semantics: want 3 solutions, got %d: %v", len(repairing), instKeys(repairing))
	}
	// Every pruned solution is also a repairing solution.
	keys := map[string]bool{}
	for _, r := range repairing {
		keys[r.Key()] = true
	}
	for _, p := range sols {
		if !keys[p.Key()] {
			t.Fatalf("pruned solution %v not among repairing solutions %v", p, instKeys(repairing))
		}
	}
}

func section31WithFD() *core.System {
	p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		Fact("r1", "a", "b").Fact("r2", "a", "g").
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2")).
		AddIC(constraint.FD("fd_r2", "r2"))
	q := core.NewPeer("Q").Declare("s1", 2).Declare("s2", 2).
		Fact("s1", "c", "b").
		Fact("s2", "c", "e").Fact("s2", "c", "f")
	return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
}

// TestRejectsCyclicDECs: insertion targets appearing in DEC bodies are
// outside the supported class and must be rejected.
func TestRejectsCyclicDECs(t *testing.T) {
	p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		Fact("r1", "a", "b").
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2")).
		AddDEC("Q", constraint.KeyEGD("egd", "r2", "s1"))
	q := core.NewPeer("Q").Declare("s1", 2).Declare("s2", 2).Fact("s1", "c", "b")
	s := core.NewSystem().MustAddPeer(p).MustAddPeer(q)
	if _, _, err := BuildDirect(s, "P"); err == nil {
		t.Fatal("cyclic DEC set must be rejected")
	}
}

// TestRandomCrossValidation compares the two engines on randomized
// Example-1-shaped systems: inclusion import plus key EGD under
// less/same trust. The LP solutions, filtered to ≤r-minimal ones,
// must equal the repair-based solutions.
func TestRandomCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doms := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 40; trial++ {
		s := randomExample1System(rng, doms)
		want, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: core: %v", trial, err)
		}
		lpSols, err := SolutionsViaLP(s, "P1", RunOptions{})
		if err != nil {
			t.Fatalf("trial %d: lp: %v", trial, err)
		}
		got := FilterMinimal(s.Global(), lpSols)
		if !sameInstances(want, got) {
			t.Fatalf("trial %d: engines disagree on %s\ncore: %v\nlp:   %v",
				trial, s.Global(), instKeys(want), instKeys(got))
		}
	}
}

func randomExample1System(rng *rand.Rand, dom []string) *core.System {
	pick := func() string { return dom[rng.Intn(len(dom))] }
	p1 := core.NewPeer("P1").Declare("r1", 2).
		SetTrust("P2", core.TrustLess).SetTrust("P3", core.TrustSame).
		AddDEC("P2", constraint.Inclusion("inc", "r2", "r1", 2)).
		AddDEC("P3", constraint.KeyEGD("egd", "r1", "r3"))
	p2 := core.NewPeer("P2").Declare("r2", 2)
	p3 := core.NewPeer("P3").Declare("r3", 2)
	for i := 0; i < 2+rng.Intn(2); i++ {
		p1.Fact("r1", pick(), pick())
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		p2.Fact("r2", pick(), pick())
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		p3.Fact("r3", pick(), pick())
	}
	return core.NewSystem().MustAddPeer(p1).MustAddPeer(p2).MustAddPeer(p3)
}

// TestRandomCrossValidationReferential does the same for Section
// 3.1-shaped systems (referential DEC with choice).
func TestRandomCrossValidationReferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doms := []string{"a", "b", "c"}
	for trial := 0; trial < 40; trial++ {
		s := randomSection31System(rng, doms)
		want, err := core.SolutionsFor(s, "P", core.SolveOptions{})
		if err != nil {
			t.Fatalf("trial %d: core: %v", trial, err)
		}
		lpSols, err := SolutionsViaLP(s, "P", RunOptions{})
		if err != nil {
			t.Fatalf("trial %d: lp: %v", trial, err)
		}
		got := FilterMinimal(s.Global(), lpSols)
		if !sameInstances(want, got) {
			t.Fatalf("trial %d: engines disagree on %s\ncore: %v\nlp:   %v",
				trial, s.Global(), instKeys(want), instKeys(got))
		}
	}
}

func randomSection31System(rng *rand.Rand, dom []string) *core.System {
	pick := func() string { return dom[rng.Intn(len(dom))] }
	p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2"))
	q := core.NewPeer("Q").Declare("s1", 2).Declare("s2", 2)
	for i := 0; i < 1+rng.Intn(2); i++ {
		p.Fact("r1", pick(), pick())
	}
	for i := 0; i < rng.Intn(2); i++ {
		p.Fact("r2", pick(), pick())
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		q.Fact("s1", pick(), pick())
	}
	for i := 0; i < rng.Intn(3); i++ {
		q.Fact("s2", pick(), pick())
	}
	return core.NewSystem().MustAddPeer(p).MustAddPeer(q)
}

// TestShiftGivesSameSolutions: Section 4.1 — solving the HCF-shifted
// program yields the same solutions.
func TestShiftGivesSameSolutions(t *testing.T) {
	for _, sys := range []*core.System{core.Example1System(), core.Section31System()} {
		id := sys.Peers()[0]
		plain, err := SolutionsViaLP(sys, id, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		shifted, err := SolutionsViaLP(sys, id, RunOptions{UseShift: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameInstances(plain, shifted) {
			t.Fatalf("shifted solving differs for peer %s:\nplain:  %v\nshifted:%v",
				id, instKeys(plain), instKeys(shifted))
		}
	}
}
