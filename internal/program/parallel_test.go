package program

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/foquery"
)

// TestLPRouteParallelIdentical runs the whole LP route (build, ground,
// parallel stable-model search, model projection, intersected query
// answers) at several parallelism levels against the sequential run on
// the paper fixtures.
func TestLPRouteParallelIdentical(t *testing.T) {
	cases := []struct {
		name string
		sys  *core.System
		peer core.PeerID
		opt  RunOptions
	}{
		{"example1-direct", core.Example1System(), "P1", RunOptions{}},
		{"section31-direct", core.Section31System(), "P", RunOptions{}},
		{"example4-transitive", core.Example4System(), "P", RunOptions{Transitive: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqOpt := tc.opt
			seqOpt.Parallelism = 1
			seq, err := SolutionsViaLP(tc.sys, tc.peer, seqOpt)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 4, 8} {
				parOpt := tc.opt
				parOpt.Parallelism = p
				par, err := SolutionsViaLP(tc.sys, tc.peer, parOpt)
				if err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				if len(par) != len(seq) {
					t.Fatalf("parallelism %d: %d solutions != %d", p, len(par), len(seq))
				}
				for i := range par {
					if par[i].Key() != seq[i].Key() {
						t.Fatalf("parallelism %d: solution %d differs", p, i)
					}
				}
			}
		})
	}
}

// TestPCAViaLPParallelIdentical checks Definition 5 answers through the
// LP engine at several parallelism levels on the Example 1/2 system.
func TestPCAViaLPParallelIdentical(t *testing.T) {
	s := core.Example1System()
	q := foquery.MustParse("r1(X,Y)")
	vars := []string{"X", "Y"}
	seq, err := PeerConsistentAnswersViaLP(s, "P1", q, vars, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("Example 2 expects 3 answers, got %v", seq)
	}
	for _, p := range []int{2, 4, 8} {
		par, err := PeerConsistentAnswersViaLP(s, "P1", q, vars, RunOptions{Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("parallelism %d: %v != %v", p, par, seq)
		}
	}
}
