package program

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/symtab"
)

// FilterMinimal keeps the instances whose symmetric difference from
// base is ⊆-minimal within the set. The paper's choice-operator
// programs pick existential witnesses independently per violation key;
// when violations overlap (one insertion can satisfy several), some
// answer sets correspond to repairs that are not ≤r-minimal. Filtering
// by delta minimality restores exact agreement with the
// model-theoretic semantics of Definition 4 — tests cross-validate
// core.SolutionsFor == FilterMinimal(SolutionsViaLP).
//
// Like repair's minimalByDelta, deltas are sorted fact-id sets:
// candidates are scanned in ascending delta size and each subset test
// is a merge walk, not a string-keyed map probe.
func FilterMinimal(base *relation.Instance, sols []*relation.Instance) []*relation.Instance {
	tab := symtab.New()
	deltas := make([][]symtab.Sym, len(sols))
	for i, s := range sols {
		deltas[i] = relation.DeltaIDs(tab, relation.SymDiff(base, s))
	}
	order := make([]int, len(sols))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(deltas[order[a]]) < len(deltas[order[b]]) })
	var out []*relation.Instance
	seen := map[string]bool{}
	for oi, i := range order {
		minimal := true
		for _, j := range order[:oi] {
			if len(deltas[j]) < len(deltas[i]) && relation.SubsetOfIDs(deltas[j], deltas[i]) {
				minimal = false
				break
			}
		}
		if minimal {
			// The delta identifies the instance (given base), so the
			// packed delta doubles as the dedup key.
			k := relation.PackIDKey(deltas[i])
			if !seen[k] {
				seen[k] = true
				out = append(out, sols[i])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
