package program

import (
	"sort"

	"repro/internal/relation"
)

// FilterMinimal keeps the instances whose symmetric difference from
// base is ⊆-minimal within the set. The paper's choice-operator
// programs pick existential witnesses independently per violation key;
// when violations overlap (one insertion can satisfy several), some
// answer sets correspond to repairs that are not ≤r-minimal. Filtering
// by delta minimality restores exact agreement with the
// model-theoretic semantics of Definition 4 — tests cross-validate
// core.SolutionsFor == FilterMinimal(SolutionsViaLP).
func FilterMinimal(base *relation.Instance, sols []*relation.Instance) []*relation.Instance {
	deltas := make([]map[string]bool, len(sols))
	for i, s := range sols {
		deltas[i] = relation.DeltaKeySet(relation.SymDiff(base, s))
	}
	var out []*relation.Instance
	seen := map[string]bool{}
	for i := range sols {
		minimal := true
		for j := range sols {
			if i == j {
				continue
			}
			if relation.SubsetOf(deltas[j], deltas[i]) && len(deltas[j]) < len(deltas[i]) {
				minimal = false
				break
			}
		}
		if minimal {
			k := sols[i].Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, sols[i])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
