package program

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/term"
)

// BuildTransitive compiles the combined specification program of
// Section 4.3 for the peer network reachable from root through trust
// edges: each reachable peer contributes its local program, and rules
// of a peer read the *repaired* (primed) versions of the relations its
// more-trusted neighbours themselves repair — exactly how Example 4
// replaces S1 by S'1 in rules (10) and (11) while keeping Q's own
// import rules (12), (13).
//
// Peers are compiled upstream-first (most trusted first). Implicit
// cyclic dependencies between peers are rejected, as the paper flags
// them as problematic [19]. In the transitive case each peer repairs
// its own relations (less-trust chains); same-trust edges are honoured
// at the root only.
func BuildTransitive(s *core.System, root core.PeerID) (*lp.Program, *Naming, error) {
	return BuildTransitiveOpt(s, root, BuildOptions{})
}

// BuildTransitiveOpt is BuildTransitive restricted to a query-relevance
// slice: only kept DECs/ICs are compiled across the reachable peers,
// and only relevant relations receive persistence rules, primed
// versions and facts.
func BuildTransitiveOpt(s *core.System, root core.PeerID, opt BuildOptions) (*lp.Program, *Naming, error) {
	if _, ok := s.Peer(root); !ok {
		return nil, nil, fmt.Errorf("program: unknown peer %s", root)
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}

	order, err := topoOrder(s, root)
	if err != nil {
		return nil, nil, err
	}

	naming := newNaming()
	combined := &lp.Program{}
	// Relations repaired by an already-compiled peer, read in their
	// primed version downstream.
	repaired := map[string]string{}
	allMutable := map[string]bool{}
	needDomFacts := false

	for _, id := range order {
		p, _ := s.Peer(id)
		if len(p.DECs) == 0 {
			continue // leaf peer: its data is read as-is
		}
		b := &builder{
			sys:            s,
			naming:         naming,
			prog:           combined,
			opt:            opt,
			mutable:        map[string]bool{},
			upstreamPrimed: cloneMap(repaired),
			imports:        map[string][]term.Atom{},
			needCand:       map[string]bool{},
		}
		includeSame := id == root
		if err := b.compilePeer(p, includeSame); err != nil {
			return nil, nil, fmt.Errorf("program: compiling peer %s: %w", id, err)
		}
		for rel := range b.mutable {
			if !opt.relevant(rel) {
				// Out-of-slice relations keep no primed version;
				// downstream peers read their originals, which the
				// dropped rules never change.
				continue
			}
			repaired[rel] = naming.Prime(rel)
			allMutable[rel] = true
		}
		if b.needCand["\x00dom"] {
			needDomFacts = true
		}
	}

	// Facts for every referenced relation, once.
	fb := &builder{
		sys:      s,
		naming:   naming,
		prog:     combined,
		opt:      opt,
		mutable:  allMutable,
		imports:  map[string][]term.Atom{},
		needCand: map[string]bool{},
	}
	if needDomFacts {
		fb.needDom()
	}
	rootPeer, _ := s.Peer(root)
	fb.emitFacts(rootPeer, true)
	return combined, naming, nil
}

// topoOrder returns the peers reachable from root, most-trusted first
// (post-order DFS over trust edges), rejecting cycles.
func topoOrder(s *core.System, root core.PeerID) ([]core.PeerID, error) {
	const (
		gray  = 1
		black = 2
	)
	color := map[core.PeerID]int{}
	var order []core.PeerID
	var visit func(id core.PeerID) error
	visit = func(id core.PeerID) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("program: cyclic trust/DEC dependencies through peer %s (the paper's transitive case requires acyclicity)", id)
		case black:
			return nil
		}
		color[id] = gray
		p, ok := s.Peer(id)
		if !ok {
			return fmt.Errorf("program: unknown peer %s", id)
		}
		for _, lvl := range []core.TrustLevel{core.TrustLess, core.TrustSame} {
			for _, q := range s.TrustedPeers(id, lvl) {
				if len(p.DECs[q]) == 0 {
					continue
				}
				if err := visit(q); err != nil {
					return err
				}
			}
		}
		color[id] = black
		order = append(order, id) // post-order: most trusted first
		return nil
	}
	if err := visit(root); err != nil {
		return nil, err
	}
	return order, nil
}

func cloneMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
