// Package repro's root benchmarks: one testing.B benchmark per
// experiment row of EXPERIMENTS.md (E-series fidelity checks appear as
// correctness-verifying benchmarks; B-series scaling rows as parameter
// sweeps via sub-benchmarks). Regenerate everything with
//
//	go test -bench=. -benchmem
//
// or through cmd/p2pbench, which prints the same series as tables.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/foquery"
	"repro/internal/lp"
	"repro/internal/lp/ground"
	"repro/internal/lp/solve"
	"repro/internal/peernet"
	"repro/internal/program"
	"repro/internal/repair"
	"repro/internal/rewrite"
	"repro/internal/slice"
	"repro/internal/workload"
)

// BenchmarkE1SolutionsExample1 regenerates Example 1's two solutions.
func BenchmarkE1SolutionsExample1(b *testing.B) {
	s := core.Example1System()
	for i := 0; i < b.N; i++ {
		sols, err := core.SolutionsFor(s, "P1", core.SolveOptions{})
		if err != nil || len(sols) != 2 {
			b.Fatalf("solutions = %d, %v", len(sols), err)
		}
	}
}

// BenchmarkE2PCA regenerates Example 2's peer consistent answers, per
// engine.
func BenchmarkE2PCA(b *testing.B) {
	s := core.Example1System()
	q := foquery.MustParse("r1(X,Y)")
	b.Run("repair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ans, err := core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{})
			if err != nil || len(ans) != 3 {
				b.Fatalf("%v %v", ans, err)
			}
		}
	})
	b.Run("lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ans, err := program.PeerConsistentAnswersViaLP(s, "P1", q, []string{"X", "Y"}, program.RunOptions{})
			if err != nil || len(ans) != 3 {
				b.Fatalf("%v %v", ans, err)
			}
		}
	})
	b.Run("rewrite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ans, err := rewrite.PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, rewrite.Options{})
			if err != nil || len(ans) != 3 {
				b.Fatalf("%v %v", ans, err)
			}
		}
	})
}

// BenchmarkE3DirectProgram regenerates the Section 3.1 answer sets.
func BenchmarkE3DirectProgram(b *testing.B) {
	s := core.Section31System()
	for i := 0; i < b.N; i++ {
		sols, err := program.SolutionsViaLP(s, "P", program.RunOptions{})
		if err != nil || len(sols) != 3 {
			b.Fatalf("solutions = %d, %v", len(sols), err)
		}
	}
}

// BenchmarkE4Shift regenerates the Example 3 shift equivalence.
func BenchmarkE4Shift(b *testing.B) {
	s := core.Section31System()
	for i := 0; i < b.N; i++ {
		sols, err := program.SolutionsViaLP(s, "P", program.RunOptions{UseShift: true})
		if err != nil || len(sols) != 3 {
			b.Fatalf("solutions = %d, %v", len(sols), err)
		}
	}
}

// BenchmarkE5LAV regenerates the appendix stable models.
func BenchmarkE5LAV(b *testing.B) {
	s := core.Section31System()
	prog, _, err := program.BuildLAV(s, "P")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		models, err := program.Solve(prog, program.RunOptions{})
		if err != nil || len(models) != 4 {
			b.Fatalf("models = %d, %v", len(models), err)
		}
	}
}

// BenchmarkE6Transitive regenerates Example 4's combined program run.
func BenchmarkE6Transitive(b *testing.B) {
	s := core.Example4System()
	for i := 0; i < b.N; i++ {
		sols, err := program.SolutionsViaLP(s, "P", program.RunOptions{Transitive: true})
		if err != nil || len(sols) != 3 {
			b.Fatalf("solutions = %d, %v", len(sols), err)
		}
	}
}

// BenchmarkE7LocalIC regenerates the local-IC pruning experiment.
func BenchmarkE7LocalIC(b *testing.B) {
	p := core.NewPeer("P").Declare("r1", 2).Declare("r2", 2).
		Fact("r1", "a", "b").Fact("r2", "a", "g").
		SetTrust("Q", core.TrustLess).
		AddDEC("Q", constraint.Referential("dec3", "r1", "s1", "r2", "s2")).
		AddIC(constraint.FD("fd_r2", "r2"))
	q := core.NewPeer("Q").Declare("s1", 2).Declare("s2", 2).
		Fact("s1", "c", "b").Fact("s2", "c", "e").Fact("s2", "c", "f")
	s := core.NewSystem().MustAddPeer(p).MustAddPeer(q)
	for i := 0; i < b.N; i++ {
		sols, err := program.SolutionsViaLP(s, "P", program.RunOptions{})
		if err != nil || len(sols) != 1 {
			b.Fatalf("solutions = %d, %v", len(sols), err)
		}
	}
}

// BenchmarkB1PCAVsSize sweeps instance size per engine.
func BenchmarkB1PCAVsSize(b *testing.B) {
	for _, n := range []int{5, 10, 20, 40} {
		s := workload.Example1Shaped(n, 3, 2, 1)
		q := foquery.MustParse("r1(X,Y)")
		b.Run(fmt.Sprintf("rewrite/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, rewrite.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := program.PeerConsistentAnswersViaLP(s, "P1", q, []string{"X", "Y"}, program.RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("repair/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkB1PCAVsSizeParallel is the parallel variant of B1: the
// repair engine at Parallelism 1 vs 4 vs GOMAXPROCS on the largest B1
// workload. On multi-core, par=4 tracks the sequential time divided by
// min(4, cores); par=1 is the byte-identical sequential baseline.
func BenchmarkB1PCAVsSizeParallel(b *testing.B) {
	for _, n := range []int{20, 40} {
		s := workload.Example1Shaped(n, 3, 2, 1)
		q := foquery.MustParse("r1(X,Y)")
		for _, par := range []int{1, 4, 0} {
			name := fmt.Sprintf("repair/par=%d/n=%d", par, n)
			if par == 0 {
				name = fmt.Sprintf("repair/par=max/n=%d", n)
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.PeerConsistentAnswers(s, "P1", q, []string{"X", "Y"}, core.SolveOptions{Parallelism: par}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkB2ConflictBlowup sweeps the number of independent conflicts.
func BenchmarkB2ConflictBlowup(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		s := workload.IndependentConflicts(k)
		b.Run(fmt.Sprintf("lp/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sols, err := program.SolutionsViaLP(s, "A", program.RunOptions{})
				if err != nil || len(sols) != 1<<k {
					b.Fatalf("solutions = %d, %v", len(sols), err)
				}
			}
		})
		b.Run(fmt.Sprintf("repair/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sols, err := core.SolutionsFor(s, "A", core.SolveOptions{})
				if err != nil || len(sols) != 1<<k {
					b.Fatalf("solutions = %d, %v", len(sols), err)
				}
			}
		})
	}
}

// BenchmarkB3Crossover sweeps conflicts at fixed size across engines.
func BenchmarkB3Crossover(b *testing.B) {
	for _, k := range []int{1, 2, 3, 4} {
		s := workload.Example1Shaped(10, 2, k, 1)
		q := foquery.MustParse("r1(X,Y)")
		b.Run(fmt.Sprintf("rewrite/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.PCAByRewriting(s, "P1", "r1", []string{"X", "Y"}, rewrite.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lp/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := program.PeerConsistentAnswersViaLP(s, "P1", q, []string{"X", "Y"}, program.RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkB4ShiftAblation compares disjunctive and shifted solving.
func BenchmarkB4ShiftAblation(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		s := workload.IndependentConflicts(k)
		g := groundProgram(b, s, "A")
		b.Run(fmt.Sprintf("disjunctive/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solve.StableModels(g, solve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		sh, err := solve.Shift(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shifted/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solve.StableModels(sh, solve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkB5Grounding sweeps fact counts through the grounder.
func BenchmarkB5Grounding(b *testing.B) {
	for _, n := range []int{10, 25, 50, 100} {
		s := workload.ReferentialShaped(1, 2, n, 1)
		prog, _, err := program.BuildDirect(s, "P")
		if err != nil {
			b.Fatal(err)
		}
		unfolded, err := lp.UnfoldChoice(prog)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("facts=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ground.Ground(unfolded); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkB6Network measures networked PCA per transport/latency.
func BenchmarkB6Network(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		latency time.Duration
	}{{"latency=0", 0}, {"latency=1ms", time.Millisecond}} {
		sys := core.Example1System()
		tr := peernet.NewInProc()
		tr.Latency = cfg.latency
		nodes := map[core.PeerID]*peernet.Node{}
		for _, id := range sys.Peers() {
			p, _ := sys.Peer(id)
			n := peernet.NewNode(p, tr, nil)
			if err := n.Start(":0"); err != nil {
				b.Fatal(err)
			}
			defer n.Stop()
			nodes[id] = n
		}
		for _, n := range nodes {
			for _, m := range nodes {
				if n != m {
					n.SetNeighbor(m.Peer.ID, m.Addr)
				}
			}
		}
		q := foquery.MustParse("r1(X,Y)")
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ans, err := nodes["P1"].PeerConsistentAnswers(q, []string{"X", "Y"}, false)
				if err != nil || len(ans) != 3 {
					b.Fatalf("%v %v", ans, err)
				}
			}
		})
	}
}

// BenchmarkB6NetworkParallel is the parallel variant of B6: networked
// PCA at 1ms link latency with sequential fan-out, 4-way concurrent
// fan-out, and a warm TTL snapshot cache. The fan-out win is
// latency-bound, so it shows even on a single core.
func BenchmarkB6NetworkParallel(b *testing.B) {
	for _, cfg := range []struct {
		name        string
		parallelism int
		cacheTTL    time.Duration
	}{
		{"fanout=seq", 1, 0},
		{"fanout=par4", 4, 0},
		{"cache=warm", 1, time.Hour},
	} {
		sys := core.Example1System()
		tr := peernet.NewInProc()
		tr.Latency = time.Millisecond
		nodes := map[core.PeerID]*peernet.Node{}
		for _, id := range sys.Peers() {
			p, _ := sys.Peer(id)
			n := peernet.NewNode(p, tr, nil)
			n.Parallelism = cfg.parallelism
			n.CacheTTL = cfg.cacheTTL
			if err := n.Start(":0"); err != nil {
				b.Fatal(err)
			}
			defer n.Stop()
			nodes[id] = n
		}
		for _, n := range nodes {
			for _, m := range nodes {
				if n != m {
					n.SetNeighbor(m.Peer.ID, m.Addr)
				}
			}
		}
		q := foquery.MustParse("r1(X,Y)")
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ans, err := nodes["P1"].PeerConsistentAnswers(q, []string{"X", "Y"}, false)
				if err != nil || len(ans) != 3 {
					b.Fatalf("%v %v", ans, err)
				}
			}
		})
	}
}

// BenchmarkB7ChoiceUnfolding measures the choice-unfolding pipeline.
func BenchmarkB7ChoiceUnfolding(b *testing.B) {
	for _, v := range []int{1, 3, 5} {
		s := workload.ReferentialShaped(v, 2, 0, 1)
		prog, _, err := program.BuildDirect(s, "P")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("violations=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				u, err := lp.UnfoldChoice(prog)
				if err != nil {
					b.Fatal(err)
				}
				g, err := ground.Ground(u)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := solve.StableModels(g, solve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkB8SupportPropagation ablates the solver's support pruning.
func BenchmarkB8SupportPropagation(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		s := workload.IndependentConflicts(k)
		g := groundProgram(b, s, "A")
		b.Run(fmt.Sprintf("with/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solve.StableModels(g, solve.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("without/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solve.StableModels(g, solve.Options{NoSupportPropagation: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func groundProgram(b *testing.B, s *core.System, id core.PeerID) *ground.Program {
	b.Helper()
	prog, _, err := program.BuildDirect(s, id)
	if err != nil {
		b.Fatal(err)
	}
	unfolded, err := lp.UnfoldChoice(prog)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ground.Ground(unfolded)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkB9WideUniverseSlicing contrasts full against sliced
// answering on the wide-universe workload (tiny query-relevant core,
// wide bystander overlay), in-process: the sliced variant computes the
// relevance slice and answers with slice-restricted options.
func BenchmarkB9WideUniverseSlicing(b *testing.B) {
	s := workload.WideUniverse(8, 3, 40, 2, 1)
	q := foquery.MustParse("q0(X,Y)")
	vars := []string{"X", "Y"}
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PeerConsistentAnswers(s, "P0", q, vars, core.SolveOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sl, err := slice.ForQuery(s, "P0", q, false)
			if err != nil {
				b.Fatal(err)
			}
			_, err = core.PeerConsistentAnswers(s, "P0", q, vars, core.SolveOptions{
				Parallelism:  1,
				KeepDep:      sl.KeepDep,
				RelevantRels: sl.RelevantRels(),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkB10ScatteredConflicts contrasts the global wave search
// against the conflict-localized engine on k independent conflicts
// scattered over disjoint relation pairs: consistent answering of a
// single-relation query (per-component evaluation, no cross-product
// materialization) and solution enumeration (composed cross-product).
func BenchmarkB10ScatteredConflicts(b *testing.B) {
	const k = 8
	s := workload.ScatteredConflicts(k, 20, 1)
	p, _ := s.Peer("A")
	deps := p.DECs["B"]
	inst := s.Global()
	q := foquery.MustParse("ra0(X,Y)")
	vars := []string{"X", "Y"}
	b.Run("cqa-global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.ConsistentAnswers(inst.Clone(), deps, q, vars, repair.Options{NoLocalize: true, Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cqa-localized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repair.ConsistentAnswers(inst.Clone(), deps, q, vars, repair.Options{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("solve-global", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolutionsFor(s, "A", core.SolveOptions{NoLocalize: true, Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("solve-localized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SolutionsFor(s, "A", core.SolveOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkB12LargeUniverse measures the repair+answer hot path over a
// 10^5-fact universe (workload.LargeUniverse): a selective query on the
// conflicted core relation, answered through the conflict-localized
// repair engine over the full (unsliced) instance. Run with -benchmem:
// the allocs/op figure is the columnar-memory-plane acceptance metric —
// per-candidate instance clones dominate, so storage that clones by
// copy-on-write segment sharing instead of per-tuple map copying drops
// it by orders of magnitude.
func BenchmarkB12LargeUniverse(b *testing.B) {
	s := workload.LargeUniverse(100000, 4, 4, 2500, 1)
	p, _ := s.Peer("P0")
	deps := p.DECs["PK"]
	inst := s.Global()
	q := foquery.MustParse("q0(c0,Y)")
	vars := []string{"Y"}
	b.Run("repair-answer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := repair.ConsistentAnswers(inst.Clone(), deps, q, vars, repair.Options{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clone", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inst.Clone()
		}
	})
}
