// Package repro is a from-scratch Go reproduction of Bertossi & Bravo,
// "Query Answering in Peer-to-Peer Data Exchange Systems" (EDBT 2004
// Workshops, arXiv:cs/0401015).
//
// The implementation lives under internal/ (see README.md for the
// architecture): the model-theoretic semantics of Definitions 1-5
// (internal/core, internal/repair), the answer-set-programming route of
// Sections 3-4 with a full disjunctive stable-model solver
// (internal/program, internal/lp), the first-order rewriting of Section
// 2 (internal/rewrite), and the substrates: relational storage
// (internal/relation), FO query evaluation (internal/foquery),
// constraints (internal/constraint), networking (internal/peernet), a
// system-description format (internal/sysdsl) and workload generators
// (internal/workload).
//
// Command-line tools: cmd/p2pqa (query answering over system
// descriptions), cmd/asp (the stable-model solver), cmd/p2pbench
// (regenerates every experiment in EXPERIMENTS.md). Runnable examples
// are under examples/. The root package holds the benchmark suite
// (bench_test.go), one benchmark per experiment row.
//
// # Concurrency and caching
//
// Peer consistent answering is an intersection over all solutions of a
// peer (Definition 5) — an embarrassingly parallel computation. Every
// layer exposes a Parallelism knob (0 = GOMAXPROCS, 1 = the sequential
// seed behaviour; results are byte-identical at every level, with one
// exception: solve with MaxModels set and Parallelism > 1 returns a
// scheduling-dependent subset of the models):
//
//   - repair.Options.Parallelism drives the wave expansion of the
//     repair search itself (see below) and fans the per-repair query
//     evaluation of IntersectAnswers over a bounded worker pool
//     (internal/parallel);
//   - core.SolveOptions.Parallelism additionally fans out the stage-2
//     repair loop of SolutionsFor, merged deterministically;
//   - ground.Options.Parallelism fans the grounder's fixpoint rounds
//     and rule instantiation out per rule (see below);
//   - solve.Options.Parallelism splits the stable-model DFS on the
//     first k choice atoms into 2^k parallel subtrees with a shared
//     atomic model counter honoring MaxModels;
//   - program.RunOptions.Parallelism threads the knob through the whole
//     LP route (grounder included);
//   - peernet.Node.Parallelism fetches neighbour specifications
//     concurrently per BFS level, and peernet.Node.CacheTTL caches
//     assembled snapshots and fetched relations for a TTL window
//     (SetNeighbor invalidates). Node is safe for concurrent use.
//
// All three CLIs surface the knob as -parallelism.
//
// # Parallel execution model
//
// The two formerly sequential engines — grounding and the repair
// search — run as deterministic rounds of parallel pure work between
// sequential merge barriers, so their output is byte-identical at
// every parallelism level (the determinism stress tests and the
// grounder fuzz target lock this down; CI runs them under -race with a
// GOMAXPROCS matrix).
//
// Grounding (internal/lp/ground): the possible-atom fixpoint runs in
// rounds over a frozen snapshot of the predicate-hash-sharded atom
// set. Workers match rules independently — each with a private
// term.Keyer over the shared concurrent symbol table and private
// pending buffers — and emit both newly derived head atoms and the
// round's full rule instantiation as interned symbol ids. The merge
// between rounds drains the buffers in rule order (the only
// synchronization point), so the set's insertion order, every
// candidate enumeration order and the final atom numbering are
// scheduling-independent. Rules re-run only when a predicate their
// body reads (positively or under negation) grew in the previous round
// (predicate-level semi-naive filtering); a rule's last active
// enumeration therefore is its final instantiation, and the fixpoint
// doubles as the instantiation pass.
//
// Repair search (internal/repair): the search over candidate states
// runs in waves. Each wave takes a fixed-size chunk off the pending
// stack (a constant independent of Parallelism), filters it through
// the frontier — the sharded visited set and the found-delta
// subsumption check, in that pinned order (frontier.go) — on the
// coordinating goroutine, expands the admitted states in parallel
// (lazy instance materialization from the parent plus the action,
// violation check, action enumeration, and child deltas derived by
// XOR-ing the action's fact ids into the parent's sorted delta), and
// merges results back in canonical order. Pruning, bound reporting and
// MaxRepairs cuts all happen on the merge path, so they are
// deterministic too — unlike solve's MaxModels, a truncated repair
// search returns the same repairs at every parallelism level.
//
// # Conflict-localized repair
//
// Repairs of an inconsistent instance factorize over the connected
// components of its conflict graph (the classic CQA observation of
// Arenas-Bertossi-Chomicki). The repair engine exploits this
// (internal/repair/localize.go): at the root it computes every
// violation (constraint.AllViolations) and partitions them by
// interaction — fact-level edges where the facts their repair actions
// can touch overlap, predicate-level dependency-closure edges where a
// violation can cascade (existential-TGD witness inserts, insertions
// that create new body matches, deletions that un-witness a TGD's
// derived head facts). Each component is then searched independently by
// the wave engine with everything outside frozen: violation checking is
// incremental (after an action only the dependencies indexed under the
// touched predicates — constraint.DepIndex — are re-checked against
// lists carried on the search node), and the global minimal repairs are
// composed as the cross-product of the component repairs, which is
// exact because the disjoint deltas make ⊆-minimality factorize. When
// a query's relations intersect the deltas of at most one component
// (and the query is domain-independent by construction), consistent
// answering evaluates that component's repairs alone and never
// materializes the cross-product: k scattered conflicts cost k
// component searches instead of a 2^k enumeration (benchmark B10:
// ~54x at k=8, ~350x at k=10 on this box).
//
// Localization is applied only when provably exact, so it is
// byte-identical to the global wave search (localized_equiv_test.go):
// MaxRepairs truncation falls back to the global engine (truncation
// order is the spec), domain-dependent witness enumeration falls back
// (components would interact through the active domain), and the
// component searches — run without subsumption pruning so every
// reachable component delta is generated — prove ErrBound absent by
// summing their largest generated deltas below MaxDelta, falling back
// otherwise. repair.Options.NoLocalize / core.SolveOptions.NoLocalize
// expose the global engine for A/B measurement.
//
// # Query-sliced pipeline
//
// The answer path is sliced end-to-end by query relevance
// (internal/slice): from a query posed to a peer, slice.Compute derives
// the predicate-dependency closure over the peer's DECs/ICs (and, in
// the transitive case, every trust-reachable peer's), seeded with the
// queried peer's whole schema plus the query's predicates
// (foquery.Preds — negation, quantifiers and implications included).
// The closure tracks which relations, constraints and peers a
// query-relevant repair can observe; constraints with no repairable
// predicate (guards, whose violation eliminates every solution) are
// always kept, and a kept referential constraint that draws witnesses
// from the active domain degrades the slice to Full (no restriction).
// The slice is then applied at every layer:
//
//   - peernet.Node.SnapshotFor fetches specifications first
//     (OpExportSpec — schema/DECs/trust, no facts, TTL-cached per
//     peer), computes the slice, and moves only the relations in it —
//     one batched OpFetchBatch round-trip per relevant peer; bystander
//     peers contribute schema but ship no tuples;
//   - core.SolveOptions{KeepDep, RelevantRels} restricts the repair
//     engine to the slice's constraints over the restricted global
//     instance; program.BuildOptions does the same for the LP builders
//     (persistence rules, primed relations and facts only for relevant
//     relations) and ground.Options.Relevant prunes rules outside the
//     relevant predicates' dependency closure before grounding;
//   - peernet.Node.PeerConsistentAnswersFor caches answers under a
//     content-addressed (query, vars, slice signature, data
//     fingerprint) key (slice.AnswerCache): repeat queries over
//     unchanged relevant data skip grounding and repair entirely, and
//     an update to an irrelevant relation does not evict them. TTL
//     cache invalidation is relation-granular: SetNeighbor evicts only
//     the changed peer's relation/spec entries.
//
// Slicing is semantics-preserving — minimal repairs factor over
// disjoint constraint components, and the slice covers every component
// the query can observe — so sliced and unsliced answers are
// byte-identical (slicing_equiv_test.go: fixtures plus 20 seeded
// workloads across four generator shapes at Parallelism {1,4},
// including the no-solutions guard case). The B9 wide-universe
// benchmark (cmd/p2pbench, workload.WideUniverse) shows the effect: a
// tiny query-relevant core inside a wide overlay answers ~75x faster
// sliced (1 of 25 remote relations moved), with repeats served from
// the answer cache in ~100µs.
//
// # Delegated distributed execution
//
// Centralized answering pulls every relevant peer's data to the
// querying node and solves there — N peers as N data sources.
// Node.DelegatedAnswers inverts that: slice.PlanDelegation decomposes
// the query's relevance slice per owning peer and classifies each
// target of the root's DECs as a delegate (the target enforces DECs of
// its own, so it must repair before answering), a fetch (data read
// raw) or a stub (schema only). Delegates receive one atomic sub-query
// per shared relation over the existing OpPCA wire op with
// Request.Sliced and Request.Delegate set, answer it transitively from
// their own data through their own slice.AnswerCache, and ship answer
// sets — not relations — back. The querying node rebuilds a mini
// system in which each delegate's answered relations appear as plain
// facts (its DECs consumed, trust edges dropped), and runs the
// ordinary sliced transitive pipeline over it, so composition is the
// same combined-program semantics, just over pre-repaired inputs.
//
// Delegation runs only when provably exact
// (internal/slice/delegate.go); every refused shape falls back to
// PeerConsistentAnswersFor, byte-identical answers and errors. The
// gate refuses: direct semantics (Definition 4 reads neighbour data
// raw — nothing to delegate); domain-dependent (Full) slices (repairs
// may draw witnesses from the whole active domain); same-trust DECs at
// a non-root peer (the combined program ignores them, a delegate would
// enforce them); root same-trust DECs toward a repairing peer (a joint
// repair does not factor through the delegate's answer sets); and any
// kept dependency whose repair is not forced (a delegate with repair
// choices returns the intersection over its own solutions, which can
// differ from composing per-solution answers). The wire protocol
// carries a hop budget and a visited-peer set, so cyclic overlays
// terminate and surface the same error as the centralized path.
// delegated_equiv_test.go pins equivalence on the paper fixtures plus
// 20 seeded systems per shape at Parallelism {1,4} under both
// semantics, with the expected delegate/fallback outcome asserted so
// delegation cannot silently degrade into fallback-vs-fallback
// comparisons. Benchmark B11 (workload.DelegationFanout) measures the
// point: the querying peer receives filtered answer sets instead of
// raw hub+leaf relations (~2.4x fewer bytes, fewer round-trips), and
// repair CPU runs at the hubs, where the data lives. cmd/p2pqa
// surfaces the path as -delegate.
//
// # Interned-symbol core and indexing
//
// All hot paths run over interned symbols instead of raw strings:
//
//   - internal/symtab is a concurrent string↔uint32 interner. Every
//     core.System owns one table (adopted from its first peer;
//     System.AddPeer re-homes later peers onto it), so constants
//     compare and hash as machine words across the whole system.
//   - internal/relation stores each relation as a packed columnar
//     segment (see the next section), with lazily built, internally
//     synchronized read caches per relation: a sorted string view
//     (Tuples / TuplesShared) and per-column hash indexes driving
//     Instance.MatchingTuples, the indexed lookup used by constraint
//     matching, FO query generation and the repair search's witness
//     joins. The string API is a thin view; every enumeration order is
//     unchanged.
//   - internal/term provides trail-based matching (MatchTrail /
//     UnbindTrail) so grounding and constraint matching backtrack
//     without cloning substitutions, and Keyer, which interns
//     canonical ground-atom keys.
//   - internal/lp/ground keeps its possible-atom set sharded by
//     predicate hash with per-column value indexes and per-atom
//     interned keys (matched candidates hand the emitter their key
//     without re-rendering), and dedups ground rules by packed
//     atom-id keys.
//   - internal/repair describes candidate states by fact-id bitset
//     deltas (internal/bitset): the visited set, the subsumption check
//     and the final ⊆-minimality filter (minimalByDelta) all run on
//     packed word sets instead of string-keyed maps.
//   - internal/lp/solve dedups models by atom-id bitsets.
//   - internal/peernet keeps the wire format plain strings (ids are
//     node-local); tuples are re-interned at the boundary. OpFetchBatch
//     / Node.FetchRelations retrieve several relations per round-trip.
//
// The interned pipeline is byte-identical to the string pipeline on
// every fixture; internal/repair/equiv_quick_test.go cross-validates it
// against a seed-style reference on random instances.
//
// # Columnar memory plane
//
// At 10^5-10^6 facts the ceiling is no longer algorithmic but
// allocation rate and per-tuple overhead, so the hot data plane is
// columnar end to end:
//
//   - Packed tuple segments. Each relation is one arena: a flat
//     []symtab.Sym of concatenated tuple ids plus a row-offset array,
//     indexed by an open-addressing hash table from tuple content to
//     row, with liveness as a bitset over dense row ids. Inserting a
//     tuple appends ids to the arena (or revives its tombstoned row);
//     deleting clears a liveness bit. No per-tuple map entry, boxed
//     key string or per-row allocation survives at scale.
//   - Two-level copy-on-write. Instance.Clone marks segments shared
//     in O(relations). A liveness-only mutation (delete, revive)
//     privatizes just the liveness bitset; only appending a brand-new
//     row copies the arena. Repair search and serving snapshots clone
//     freely: at B12 scale a clone costs ~6µs and zero allocations
//     until first write, and parent and clone may be mutated and read
//     from different goroutines (shared arrays are immutable while
//     shared; caches are lock-protected) — pinned under -race by
//     relation/columnar_test.go, which also drives randomized op
//     sequences and a fuzz tape against a map-backed reference
//     implementation.
//   - Bitset deltas (internal/bitset). Candidate repair states,
//     visited-set keys, subsumption and ⊆-minimality all operate on
//     canonical trimmed []uint64 sets over interned fact ids — O(n/64)
//     subset/xor, allocation-free membership, and a byte key for
//     map-level dedup (solve's model dedup shares the package).
//   - Pooled wave-search scratch. Expansion workers draw
//     toggle/predicate scratch buffers from a sync.Pool, and the
//     answering paths materialize repairs without the canonical
//     sort-by-key render (discovery order suffices for intersecting),
//     which removed the dominant allocation site.
//
// Benchmark B12 (workload.LargeUniverse, 10^5 facts, sliced query
// core) measures the plane end to end: repair+consistent-answering
// allocations drop ~657x and wall time ~5.4x versus the map-backed
// storage, byte-identical answers throughout. The bench gate
// (cmd/p2pbench -gate) tracks allocs/op per benchmark block (gated,
// machine-independent) and peak RSS (recorded); -cpuprofile /
// -memprofile expose the profiles that guided the work.
//
// # Serving plane
//
// internal/serve turns a peernet.Node into a long-running query server
// (p2pqa -serve: an HTTP API — /query, /write, /metrics, /healthz —
// next to the existing peernet transport). Three mechanisms govern a
// served query:
//
//   - Admission. A bounded pool runs at most Config.MaxConcurrent
//     queries at once; up to Config.MaxQueue more wait for a slot, and
//     anything beyond is shed immediately (ErrOverloaded, HTTP 503 with
//     Retry-After) instead of building an unbounded backlog. Each
//     admitted query runs with an engine parallelism budget of
//     Config.QueryParallelism (default: GOMAXPROCS divided across the
//     pool), so one expensive repair search cannot claim every core and
//     starve the pool.
//   - Coalescing. Identical concurrent queries are collapsed in flight
//     (slice.Flight, a hand-rolled singleflight keyed by the same
//     content-addressed answer key the cache uses): one leader computes,
//     followers wait and receive deep copies, and the node's accounting
//     keeps the invariant that every query is exactly one of cache hit,
//     flight leader, or coalesced follower. Node.NoCoalesce exposes the
//     uncoalesced path for A/B measurement (benchmark B13 shows a burst
//     of identical queries computing once instead of once per admitted
//     query).
//   - Metrics. internal/metrics is a dependency-free registry of
//     counters, gauges and exponential-bucket histograms rendered in
//     text exposition format at /metrics and dumped by -stats on
//     shutdown: qps, query/write totals, p50/p99 latency, shed count,
//     queue depth, answer-cache hit rate, coalesce and solver-run
//     counters, repair-search component statistics.
//
// Write visibility is the serving plane's freshness guarantee: local
// writes go through Server.Write -> Node.UpdateLocal, which invalidates
// the node's own TTL snapshot cache, so a write is visible to the very
// next query — no staleness window on the served peer's own data.
// (Remote peers' data is still read through the TTL caches; that
// freshness bound is the documented CacheTTL semantics, not a
// serving-plane artifact.) Queries read snapshot-isolated
// copy-on-write instance clones throughout, so in-flight queries are
// unaffected by concurrent writes. Benchmark B13 drives the plane end
// to end: a sustained mixed read/write stream from concurrent clients,
// write-visibility and byte-identity checks against one-shot uncached
// answering, and the coalescing A/B.
//
// Server.Stop drains before shutdown: new queries are rejected
// immediately (ErrStopping) while both the in-flight queries and the
// already-admitted queue are given Config.DrainTimeout to complete, so
// a restart does not throw away work the server already accepted.
// Delegated sub-answering coalesces too: a peer answering OpPCA
// delegate requests runs them through the same in-flight group as its
// own queries (keyed separately), so a burst of roots delegating the
// same sub-query costs the delegate one solve.
//
// # Incremental maintenance
//
// Under write traffic the serving plane's content-addressed caches
// have a blind spot: any relevant write moves the data fingerprint,
// every cached answer key goes stale, and the next query pays a full
// snapshot + repair search + answer intersection even though a
// single-fact write typically touches one conflict component out of
// many. Incremental re-answering (internal/relation's journal,
// internal/repair's IncrState, the series layer in internal/peernet)
// closes that gap:
//
//   - Fact journal. A relation.Journal attached to the peer's live
//     instance records membership-accurate fact-level changes (dup
//     inserts and absent deletes are not recorded), with a bounded
//     buffer and Since(seq) retrieval.
//   - Delta-driven repair. repair.IncrState keeps, per query series,
//     the per-dependency violation lists and a cache of solved conflict
//     components keyed by their violation sets. On a delta it re-checks
//     only the dependencies whose predicates the delta touches
//     (constraint.DepIndex.Affected), re-runs the wave search only for
//     components whose read set the delta intersects, and re-answers
//     from the patched component repairs. Exactness gates — bounded
//     searches, deltas that could sum past MaxDelta, queries spanning
//     two components, non-domain-free queries — report ok=false and the
//     caller falls back to the byte-identical full recompute.
//   - Series + cache patching. A peernet.Node keeps an incrSeries per
//     repeated direct-semantics query: the retained sliced snapshot,
//     the reduced single-stage repair problem (core.ReduceSingleStage)
//     and the journal position it reflects. A repeat query replays the
//     journal delta onto the retained snapshot, asks the IncrState, and
//     promotes the answer-cache entry to the post-write fingerprint key
//     in place (slice.AnswerCache.Promote) — the relation hashes are
//     content-based, so the patched snapshot fingerprints identically
//     to a freshly assembled one. Validity is re-checked on every hit
//     (journal identity and availability, spec signature, remote
//     relation generations, TTL window); any mismatch drops the series
//     and the full path reseeds it. A series never outlives CacheTTL,
//     so remote staleness stays at the same TTL grade as the node's
//     relation caches. Node.NoIncremental exposes the
//     evict-and-recompute path for A/B measurement.
//
// Benchmark B14 (workload.ChurnUniverse + ChurnStream) measures the
// payoff: on a scattered-component workload whose query slice spans
// every relation, a single-fact relevant write followed by the hot
// query is >=5x cheaper answered incrementally than by
// evict-and-recompute, with every answer pair checked byte-identical
// while measuring. The churn tests (go test -run 'Churn|Incr') replay
// randomized interleaved write/query schedules and assert every served
// answer equals a fresh uncached node's, under -race and at
// parallelism 1 and 4.
package repro
