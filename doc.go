// Package repro is a from-scratch Go reproduction of Bertossi & Bravo,
// "Query Answering in Peer-to-Peer Data Exchange Systems" (EDBT 2004
// Workshops, arXiv:cs/0401015).
//
// The implementation lives under internal/ (see README.md for the
// architecture): the model-theoretic semantics of Definitions 1-5
// (internal/core, internal/repair), the answer-set-programming route of
// Sections 3-4 with a full disjunctive stable-model solver
// (internal/program, internal/lp), the first-order rewriting of Section
// 2 (internal/rewrite), and the substrates: relational storage
// (internal/relation), FO query evaluation (internal/foquery),
// constraints (internal/constraint), networking (internal/peernet), a
// system-description format (internal/sysdsl) and workload generators
// (internal/workload).
//
// Command-line tools: cmd/p2pqa (query answering over system
// descriptions), cmd/asp (the stable-model solver), cmd/p2pbench
// (regenerates every experiment in EXPERIMENTS.md). Runnable examples
// are under examples/. The root package holds the benchmark suite
// (bench_test.go), one benchmark per experiment row.
package repro
