// Determinism stress tests: every engine — repair search, grounder,
// stable-model solver, answer intersection — must produce byte-identical
// output at every parallelism level. CI runs these under -race with a
// GOMAXPROCS matrix (see .github/workflows/ci.yml) so scheduler-order
// bugs surface as diffs or race reports.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// TestDeterminismFixtures sweeps the paper's fixture systems.
func TestDeterminismFixtures(t *testing.T) {
	cases := []struct {
		name  string
		build func() *core.System
		peer  core.PeerID
		query string
		vars  []string
	}{
		{"Example1/P1", core.Example1System, "P1", "r1(X,Y)", []string{"X", "Y"}},
		{"Section31/P", core.Section31System, "P", "r1(X,Y)", []string{"X", "Y"}},
		{"Example4/P", core.Example4System, "P", "r1(X,Y)", []string{"X", "Y"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			testutil.RequireParallelismInvariant(t, tc.name, tc.build, tc.peer, tc.query, tc.vars, testutil.DefaultLevels)
		})
	}
}

// TestDeterminismSeededWorkloads sweeps generated systems over 20
// seeds. The seed drives both the generator's value choices and the
// system shape (clean facts, imports, conflicts, witnesses), so the
// sweep covers import chains, independent binary conflicts and
// referential witness choices at several sizes.
func TestDeterminismSeededWorkloads(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("example1shaped/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.Example1Shaped(2+int(seed%5), 1+int(seed%3), 1+int(seed%2), seed)
			}
			testutil.RequireParallelismInvariant(t, t.Name(), build, "P1", "r1(X,Y)", []string{"X", "Y"}, testutil.DefaultLevels)
		})
		t.Run(fmt.Sprintf("referential/seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			build := func() *core.System {
				return workload.ReferentialShaped(1+int(seed%2), 1+int(seed%2), int(seed%3), seed)
			}
			testutil.RequireParallelismInvariant(t, t.Name(), build, "P", "r1(X,Y)", []string{"X", "Y"}, testutil.DefaultLevels)
		})
	}
}
